"""Unit tests for candidate SubGraph set construction."""

import pytest

from repro.accelerator.persistent_buffer import CachedSubGraph
from repro.core.candidates import (
    build_candidate_set,
    intersect_subnets,
    truncate_to_capacity,
)

PB_BYTES = 1_769_472  # 1728 KB


class TestTruncateToCapacity:
    def test_respects_capacity(self, resnet50, resnet50_subnets):
        sg = CachedSubGraph.from_subnet(resnet50_subnets[-1])
        fitted = truncate_to_capacity(sg, PB_BYTES, supernet=resnet50)
        assert fitted.weight_bytes <= PB_BYTES

    def test_zero_capacity_empty(self, resnet50, resnet50_subnets):
        sg = CachedSubGraph.from_subnet(resnet50_subnets[0])
        assert truncate_to_capacity(sg, 0, supernet=resnet50).num_layers == 0

    def test_large_capacity_keeps_everything(self, resnet50, resnet50_subnets):
        sg = CachedSubGraph.from_subnet(resnet50_subnets[0])
        fitted = truncate_to_capacity(sg, 10**9, supernet=resnet50)
        assert fitted.weight_bytes == sg.weight_bytes

    def test_prefers_later_layers(self, resnet50, resnet50_subnets):
        import numpy as np

        sg = CachedSubGraph.from_subnet(resnet50_subnets[-1])
        back = truncate_to_capacity(sg, PB_BYTES, supernet=resnet50, prefer_later_layers=True)
        front = truncate_to_capacity(sg, PB_BYTES, supernet=resnet50, prefer_later_layers=False)
        mean_back = np.mean([resnet50.layer_index(n) for n in back.slices])
        mean_front = np.mean([resnet50.layer_index(n) for n in front.slices])
        assert mean_back > mean_front


class TestIntersectSubnets:
    def test_intersection_bytes_match_shared(self, resnet50_subnets):
        a, b = resnet50_subnets[0], resnet50_subnets[-1]
        inter = intersect_subnets(a, b)
        assert inter.weight_bytes == a.shared_bytes_with(b)

    def test_intersection_subset_of_both(self, resnet50_subnets):
        a, b = resnet50_subnets[1], resnet50_subnets[3]
        inter = intersect_subnets(a, b)
        assert inter.overlap_bytes(a) == inter.weight_bytes
        assert inter.overlap_bytes(b) == inter.weight_bytes

    def test_cross_family_rejected(self, resnet50_subnets, mobilenetv3_subnets):
        with pytest.raises(ValueError):
            intersect_subnets(resnet50_subnets[0], mobilenetv3_subnets[0])


class TestBuildCandidateSet:
    def test_basic_construction(self, resnet50_subnets):
        candidates = build_candidate_set(resnet50_subnets, capacity_bytes=PB_BYTES)
        assert len(candidates) >= len(resnet50_subnets)
        assert all(sg.weight_bytes <= PB_BYTES for sg in candidates)

    def test_no_intersections_option(self, resnet50_subnets):
        with_inter = build_candidate_set(resnet50_subnets, capacity_bytes=PB_BYTES)
        without = build_candidate_set(
            resnet50_subnets, capacity_bytes=PB_BYTES, include_intersections=False
        )
        assert len(without) <= len(with_inter)

    def test_max_size_expansion(self, mobilenetv3_subnets):
        candidates = build_candidate_set(
            mobilenetv3_subnets, capacity_bytes=PB_BYTES, max_size=40
        )
        assert len(candidates) == 40

    def test_max_size_trim(self, resnet50_subnets):
        candidates = build_candidate_set(resnet50_subnets, capacity_bytes=PB_BYTES, max_size=3)
        assert len(candidates) == 3

    def test_deterministic_given_seed(self, mobilenetv3_subnets):
        a = build_candidate_set(mobilenetv3_subnets, capacity_bytes=PB_BYTES, max_size=25, seed=3)
        b = build_candidate_set(mobilenetv3_subnets, capacity_bytes=PB_BYTES, max_size=25, seed=3)
        assert [sg.weight_bytes for sg in a] == [sg.weight_bytes for sg in b]

    def test_no_duplicates(self, resnet50_subnets):
        candidates = build_candidate_set(resnet50_subnets, capacity_bytes=PB_BYTES, max_size=30)
        keys = set()
        for sg in candidates:
            key = tuple(sorted((n, sl.kernels, sl.channels) for n, sl in sg.slices.items()))
            assert key not in keys
            keys.add(key)

    def test_invalid_inputs_rejected(self, resnet50_subnets, mobilenetv3_subnets):
        with pytest.raises(ValueError):
            build_candidate_set([], capacity_bytes=PB_BYTES)
        with pytest.raises(ValueError):
            build_candidate_set(resnet50_subnets, capacity_bytes=0)
        with pytest.raises(ValueError):
            build_candidate_set(
                [resnet50_subnets[0], mobilenetv3_subnets[0]], capacity_bytes=PB_BYTES
            )

    def test_encodings_dimension(self, resnet50, resnet50_subnets):
        candidates = build_candidate_set(resnet50_subnets, capacity_bytes=PB_BYTES)
        for vec in candidates.encodings(resnet50):
            assert vec.shape == (2 * resnet50.num_layers,)
