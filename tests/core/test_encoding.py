"""Unit tests for SubNet/SubGraph encodings and distances."""

import numpy as np
import pytest

from repro.accelerator.persistent_buffer import CachedSubGraph
from repro.core.encoding import (
    cosine_distance,
    encode_subgraph,
    encode_subnet,
    euclidean_distance,
    nearest_index,
    normalized_overlap,
)


class TestDistances:
    def test_euclidean_zero_for_identical(self):
        v = np.array([1.0, 2.0, 3.0])
        assert euclidean_distance(v, v) == 0.0

    def test_euclidean_symmetric(self):
        a, b = np.array([1.0, 0.0]), np.array([0.0, 1.0])
        assert euclidean_distance(a, b) == euclidean_distance(b, a) == pytest.approx(np.sqrt(2))

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            euclidean_distance(np.zeros(3), np.zeros(4))
        with pytest.raises(ValueError):
            cosine_distance(np.zeros(3), np.zeros(4))

    def test_cosine_bounds(self):
        a, b = np.array([1.0, 0.0]), np.array([0.0, 1.0])
        assert cosine_distance(a, b) == pytest.approx(1.0)
        assert cosine_distance(a, a) == pytest.approx(0.0)

    def test_cosine_zero_vector(self):
        assert cosine_distance(np.zeros(3), np.ones(3)) == 1.0


class TestNormalizedOverlap:
    def test_full_overlap_is_one(self):
        v = np.array([3.0, 4.0])
        assert normalized_overlap(v, v) == pytest.approx(1.0)

    def test_no_overlap_is_zero(self):
        assert normalized_overlap(np.array([1.0, 0.0]), np.array([0.0, 5.0])) == 0.0

    def test_zero_subnet_vector(self):
        assert normalized_overlap(np.zeros(4), np.ones(4)) == 0.0

    def test_between_zero_and_one(self, resnet50, resnet50_subnets):
        small, large = resnet50_subnets[0], resnet50_subnets[-1]
        overlap = normalized_overlap(encode_subnet(large), encode_subnet(small))
        assert 0.0 < overlap < 1.0


class TestNearestIndex:
    def test_picks_closest(self):
        target = np.array([1.0, 1.0])
        candidates = [np.array([0.0, 0.0]), np.array([1.0, 1.1]), np.array([5.0, 5.0])]
        assert nearest_index(target, candidates) == 1

    def test_tie_breaks_to_lowest_index(self):
        target = np.array([0.0])
        candidates = [np.array([1.0]), np.array([-1.0])]
        assert nearest_index(target, candidates) == 0

    def test_empty_candidates_raise(self):
        with pytest.raises(ValueError):
            nearest_index(np.zeros(2), [])

    def test_unknown_metric_raises(self):
        with pytest.raises(ValueError):
            nearest_index(np.zeros(2), [np.zeros(2)], metric="manhattan")

    def test_cosine_metric(self):
        target = np.array([1.0, 0.0])
        candidates = [np.array([0.0, 2.0]), np.array([3.0, 0.1])]
        assert nearest_index(target, candidates, metric="cosine") == 1


class TestEncodeHelpers:
    def test_encode_subnet_matches_method(self, resnet50_subnets):
        subnet = resnet50_subnets[0]
        assert np.array_equal(encode_subnet(subnet), subnet.encode())

    def test_encode_subgraph_matches_method(self, resnet50, resnet50_subnets):
        sg = CachedSubGraph.from_subnet(resnet50_subnets[0])
        assert np.array_equal(encode_subgraph(sg, resnet50), sg.encode(resnet50))
