"""Unit tests for the SushiAbs latency lookup table."""

import numpy as np
import pytest

from repro.accelerator.analytic_model import SushiAccelModel
from repro.accelerator.platforms import ANALYTIC_DEFAULT
from repro.core.candidates import build_candidate_set
from repro.core.latency_table import LatencyTable
from repro.supernet.accuracy import AccuracyModel


@pytest.fixture(scope="module")
def table(request):
    from repro.supernet.zoo import load_supernet, paper_pareto_subnets

    supernet = load_supernet("ofa_mobilenetv3")
    subnets = paper_pareto_subnets(supernet)
    accel = SushiAccelModel(ANALYTIC_DEFAULT, with_pb=True)
    candidates = build_candidate_set(subnets, capacity_bytes=accel.pb_capacity_bytes)
    accuracy = AccuracyModel(supernet)
    return LatencyTable.build(subnets, candidates, accel.subnet_latency_ms, accuracy.accuracy)


class TestConstruction:
    def test_shape(self, table):
        assert table.latencies_ms.shape == (table.num_subnets, table.num_subgraphs)

    def test_all_latencies_positive(self, table):
        assert np.all(table.latencies_ms > 0)

    def test_shape_mismatch_rejected(self, table):
        with pytest.raises(ValueError):
            LatencyTable(table.subnets, table.candidates, np.ones((2, 2)), table.accuracies)

    def test_bad_accuracy_rejected(self, table):
        bad_acc = np.ones(table.num_subnets)  # accuracy of exactly 1.0 invalid
        with pytest.raises(ValueError):
            LatencyTable(table.subnets, table.candidates, table.latencies_ms, bad_acc)

    def test_nonpositive_latency_rejected(self, table):
        bad = table.latencies_ms.copy()
        bad[0, 0] = 0.0
        with pytest.raises(ValueError):
            LatencyTable(table.subnets, table.candidates, bad, table.accuracies)


class TestLookups:
    def test_latency_lookup_matches_matrix(self, table):
        assert table.latency(0, 0) == pytest.approx(float(table.latencies_ms[0, 0]))

    def test_lookup_timer_accumulates(self, table):
        before = table.timer.lookups
        table.latency(1, 0)
        assert table.timer.lookups == before + 1
        assert table.timer.mean_microseconds >= 0

    def test_column_vector(self, table):
        col = table.column(0)
        assert col.shape == (table.num_subnets,)

    def test_subnet_index_roundtrip(self, table):
        for i, sn in enumerate(table.subnets):
            assert table.subnet_index(sn) == i

    def test_unknown_subnet_raises(self, table, resnet50_subnets):
        with pytest.raises(KeyError):
            table.subnet_index(resnet50_subnets[0])

    def test_best_under_accuracy_feasible(self, table):
        idx = table.best_under_accuracy(0.76, 0)
        assert idx is not None
        assert table.accuracy(idx) >= 0.76

    def test_best_under_accuracy_is_fastest_feasible(self, table):
        bound = 0.77
        idx = table.best_under_accuracy(bound, 0)
        col = table.column(0)
        feasible = [i for i in range(table.num_subnets) if table.accuracy(i) >= bound]
        assert col[idx] == min(col[i] for i in feasible)

    def test_best_under_accuracy_infeasible_returns_none(self, table):
        assert table.best_under_accuracy(0.999, 0) is None

    def test_best_under_latency_feasible(self, table):
        loose = float(table.latencies_ms.max()) + 1.0
        idx = table.best_under_latency(loose, 0)
        assert idx is not None
        # With every SubNet feasible, the most accurate one must be selected.
        assert table.accuracy(idx) == pytest.approx(float(table.accuracies.max()))

    def test_best_under_latency_infeasible_returns_none(self, table):
        assert table.best_under_latency(1e-6, 0) is None

    def test_summary_fields(self, table):
        summary = table.summary()
        assert summary["num_subnets"] == table.num_subnets
        assert summary["min_latency_ms"] <= summary["max_latency_ms"]


class TestBatchLookups:
    def test_latency_batch_matches_scalar(self, table):
        idxs = list(range(table.num_subnets)) * 2
        batch = table.latency_batch(idxs, 0)
        assert batch.tolist() == [table.latency(i, 0) for i in idxs]

    def test_best_under_accuracy_batch_matches_scalar(self, table):
        rng = np.random.default_rng(0)
        bounds = rng.uniform(0.5, 0.99, size=100)
        batch = table.best_under_accuracy_batch(bounds, 0)
        for bound, got in zip(bounds, batch):
            expected = table.best_under_accuracy(float(bound), 0)
            assert got == (-1 if expected is None else expected)

    def test_best_under_latency_batch_matches_scalar(self, table):
        rng = np.random.default_rng(1)
        hi = float(table.latencies_ms.max())
        bounds = rng.uniform(0.0, 1.5 * hi, size=100)
        batch = table.best_under_latency_batch(bounds, 1)
        for bound, got in zip(bounds, batch):
            expected = table.best_under_latency(float(bound), 1)
            assert got == (-1 if expected is None else expected)

    def test_batch_lookups_are_timed(self, table):
        before = table.timer.lookups
        table.latency_batch([0, 0, 0], 0)
        assert table.timer.lookups == before + 3
