"""Unit tests for serving metrics."""

import pytest

from repro.core.metrics import (
    QueryRecord,
    accuracy_improvement_points,
    energy_saving_percent,
    latency_improvement_percent,
    summarize_records,
)


def record(i=0, lat=5.0, lat_bound=6.0, acc=0.78, acc_bound=0.77, **kwargs):
    return QueryRecord(
        query_index=i,
        accuracy_constraint=acc_bound,
        latency_constraint_ms=lat_bound,
        subnet_name="A",
        served_accuracy=acc,
        served_latency_ms=lat,
        **kwargs,
    )


class TestQueryRecord:
    def test_slo_flags(self):
        assert record().meets_latency
        assert record().meets_accuracy
        assert not record(lat=10.0).meets_latency
        assert not record(acc=0.70).meets_accuracy


class TestSummarize:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize_records([])

    def test_basic_aggregation(self):
        records = [record(i, lat=float(i + 1)) for i in range(4)]
        metrics = summarize_records(records)
        assert metrics.num_queries == 4
        assert metrics.mean_latency_ms == pytest.approx(2.5)
        assert metrics.p50_latency_ms == pytest.approx(2.5)
        assert metrics.mean_accuracy == pytest.approx(0.78)

    def test_slo_attainment(self):
        records = [record(0), record(1, lat=10.0)]
        metrics = summarize_records(records)
        assert metrics.latency_slo_attainment == pytest.approx(0.5)
        assert metrics.accuracy_slo_attainment == pytest.approx(1.0)

    def test_energy_and_cache_load_totals(self):
        records = [record(0, offchip_energy_mj=1.0, cache_load_ms=0.5),
                   record(1, offchip_energy_mj=2.0)]
        metrics = summarize_records(records)
        assert metrics.total_offchip_energy_mj == pytest.approx(3.0)
        assert metrics.total_cache_load_ms == pytest.approx(0.5)

    def test_as_dict_roundtrip(self):
        metrics = summarize_records([record()])
        d = metrics.as_dict()
        assert d["num_queries"] == 1
        assert "mean_latency_ms" in d


class TestImprovements:
    def test_latency_improvement(self):
        base = summarize_records([record(lat=10.0)])
        better = summarize_records([record(lat=8.0)])
        assert latency_improvement_percent(base, better) == pytest.approx(20.0)

    def test_accuracy_improvement_points(self):
        base = summarize_records([record(acc=0.78)])
        better = summarize_records([record(acc=0.7898)])
        assert accuracy_improvement_points(base, better) == pytest.approx(0.98, abs=1e-6)

    def test_energy_saving(self):
        base = summarize_records([record(offchip_energy_mj=10.0)])
        better = summarize_records([record(offchip_energy_mj=2.13)])
        assert energy_saving_percent(base, better) == pytest.approx(78.7)

    def test_zero_baseline_guards(self):
        base = summarize_records([record(offchip_energy_mj=0.0)])
        assert energy_saving_percent(base, base) == 0.0
