"""Unit tests for SubNet selection policies."""

import numpy as np
import pytest

from repro.accelerator.analytic_model import SushiAccelModel
from repro.accelerator.platforms import ANALYTIC_DEFAULT
from repro.core.candidates import build_candidate_set
from repro.core.latency_table import LatencyTable
from repro.core.policies import Policy, select_subnet
from repro.supernet.accuracy import AccuracyModel
from repro.supernet.zoo import load_supernet, paper_pareto_subnets


@pytest.fixture(scope="module")
def table():
    supernet = load_supernet("ofa_resnet50")
    subnets = paper_pareto_subnets(supernet)
    accel = SushiAccelModel(ANALYTIC_DEFAULT, with_pb=True)
    candidates = build_candidate_set(subnets, capacity_bytes=accel.pb_capacity_bytes)
    accuracy = AccuracyModel(supernet)
    return LatencyTable.build(subnets, candidates, accel.subnet_latency_ms, accuracy.accuracy)


class TestStrictAccuracy:
    def test_meets_accuracy_bound(self, table):
        idx = select_subnet(
            table, Policy.STRICT_ACCURACY,
            accuracy_constraint=0.78, latency_constraint_ms=100.0, cache_state_idx=0,
        )
        assert table.accuracy(idx) >= 0.78

    def test_low_bound_selects_fastest(self, table):
        idx = select_subnet(
            table, Policy.STRICT_ACCURACY,
            accuracy_constraint=0.01, latency_constraint_ms=100.0, cache_state_idx=0,
        )
        assert idx == int(np.argmin(table.column(0)))

    def test_impossible_bound_falls_back_to_most_accurate(self, table):
        idx = select_subnet(
            table, Policy.STRICT_ACCURACY,
            accuracy_constraint=0.999, latency_constraint_ms=100.0, cache_state_idx=0,
        )
        assert idx == int(np.argmax(table.accuracies))

    def test_tighter_bound_never_lowers_accuracy(self, table):
        loose = select_subnet(
            table, Policy.STRICT_ACCURACY,
            accuracy_constraint=0.755, latency_constraint_ms=100.0, cache_state_idx=0,
        )
        tight = select_subnet(
            table, Policy.STRICT_ACCURACY,
            accuracy_constraint=0.795, latency_constraint_ms=100.0, cache_state_idx=0,
        )
        assert table.accuracy(tight) >= table.accuracy(loose)


class TestStrictLatency:
    def test_meets_latency_bound(self, table):
        bound = float(np.median(table.column(0)))
        idx = select_subnet(
            table, Policy.STRICT_LATENCY,
            accuracy_constraint=0.8, latency_constraint_ms=bound, cache_state_idx=0,
        )
        assert table.latency(idx, 0) <= bound

    def test_selects_most_accurate_feasible(self, table):
        bound = float(table.latencies_ms.max()) + 1.0
        idx = select_subnet(
            table, Policy.STRICT_LATENCY,
            accuracy_constraint=0.8, latency_constraint_ms=bound, cache_state_idx=0,
        )
        assert table.accuracy(idx) == pytest.approx(float(table.accuracies.max()))

    def test_impossible_bound_falls_back_to_fastest(self, table):
        idx = select_subnet(
            table, Policy.STRICT_LATENCY,
            accuracy_constraint=0.8, latency_constraint_ms=1e-9, cache_state_idx=0,
        )
        assert idx == int(np.argmin(table.column(0)))


class TestValidation:
    def test_bad_cache_index_rejected(self, table):
        with pytest.raises(IndexError):
            select_subnet(
                table, Policy.STRICT_ACCURACY,
                accuracy_constraint=0.78, latency_constraint_ms=10.0,
                cache_state_idx=table.num_subgraphs,
            )

    def test_policy_enum_values(self):
        assert Policy("strict_accuracy") is Policy.STRICT_ACCURACY
        assert Policy("strict_latency") is Policy.STRICT_LATENCY


class TestBatchSelection:
    @pytest.mark.parametrize("policy", [Policy.STRICT_ACCURACY, Policy.STRICT_LATENCY])
    def test_batch_matches_scalar_selection(self, table, policy):
        from repro.core.policies import select_subnet_batch

        rng = np.random.default_rng(3)
        n = 200
        # Span feasible, infeasible-low and infeasible-high bounds so both
        # fallback branches are exercised.
        accs = rng.uniform(0.5, 0.99, size=n)
        lats = rng.uniform(0.01, 2 * float(table.latencies_ms.max()), size=n)
        for cache_idx in (0, table.num_subgraphs - 1):
            batch = select_subnet_batch(
                table,
                policy,
                accuracy_constraints=accs,
                latency_constraints_ms=lats,
                cache_state_idx=cache_idx,
            )
            scalar = [
                select_subnet(
                    table,
                    policy,
                    accuracy_constraint=float(a),
                    latency_constraint_ms=float(l),
                    cache_state_idx=cache_idx,
                )
                for a, l in zip(accs, lats)
            ]
            assert batch.tolist() == scalar

    def test_batch_validates_inputs(self, table):
        from repro.core.policies import select_subnet_batch

        with pytest.raises(IndexError):
            select_subnet_batch(
                table,
                Policy.STRICT_ACCURACY,
                accuracy_constraints=[0.7],
                latency_constraints_ms=[1.0],
                cache_state_idx=table.num_subgraphs,
            )
        with pytest.raises(ValueError):
            select_subnet_batch(
                table,
                Policy.STRICT_ACCURACY,
                accuracy_constraints=[0.7, 0.8],
                latency_constraints_ms=[1.0],
                cache_state_idx=0,
            )
