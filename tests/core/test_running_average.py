"""Unit tests for the running-average SubNet encoding (AvgNet)."""

import numpy as np
import pytest

from repro.core.running_average import RunningAverageNet


class TestRunningAverageNet:
    def test_initially_empty(self):
        avg = RunningAverageNet(dimension=4, window=3)
        assert avg.is_empty
        assert np.array_equal(avg.value(), np.zeros(4))

    def test_single_update(self):
        avg = RunningAverageNet(dimension=3, window=4)
        avg.update(np.array([1.0, 2.0, 3.0]))
        assert np.array_equal(avg.value(), np.array([1.0, 2.0, 3.0]))

    def test_mean_of_window(self):
        avg = RunningAverageNet(dimension=2, window=2)
        avg.update(np.array([0.0, 0.0]))
        avg.update(np.array([2.0, 4.0]))
        assert np.array_equal(avg.value(), np.array([1.0, 2.0]))

    def test_window_evicts_oldest(self):
        avg = RunningAverageNet(dimension=1, window=2)
        avg.update(np.array([10.0]))
        avg.update(np.array([2.0]))
        avg.update(np.array([4.0]))
        assert avg.value()[0] == pytest.approx(3.0)
        assert avg.count == 2

    def test_reset(self):
        avg = RunningAverageNet(dimension=2, window=2)
        avg.update(np.ones(2))
        avg.reset()
        assert avg.is_empty

    def test_history_copies(self):
        avg = RunningAverageNet(dimension=2, window=2)
        vec = np.ones(2)
        avg.update(vec)
        history = avg.history()
        history[0][0] = 99.0
        assert avg.value()[0] == 1.0

    def test_update_does_not_alias_input(self):
        avg = RunningAverageNet(dimension=2, window=2)
        vec = np.ones(2)
        avg.update(vec)
        vec[0] = 50.0
        assert avg.value()[0] == 1.0

    def test_dimension_mismatch_rejected(self):
        avg = RunningAverageNet(dimension=3, window=2)
        with pytest.raises(ValueError):
            avg.update(np.ones(4))

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            RunningAverageNet(dimension=0, window=1)
        with pytest.raises(ValueError):
            RunningAverageNet(dimension=1, window=0)

    def test_window_one_tracks_last(self):
        avg = RunningAverageNet(dimension=1, window=1)
        avg.update(np.array([5.0]))
        avg.update(np.array([7.0]))
        assert avg.value()[0] == 7.0
