"""Unit tests for SushiSched (Algorithm 1)."""

import numpy as np
import pytest

from repro.accelerator.analytic_model import SushiAccelModel
from repro.accelerator.platforms import ANALYTIC_DEFAULT
from repro.core.candidates import build_candidate_set
from repro.core.latency_table import LatencyTable
from repro.core.policies import Policy
from repro.core.scheduler import SushiSched
from repro.supernet.accuracy import AccuracyModel
from repro.supernet.zoo import load_supernet, paper_pareto_subnets


@pytest.fixture(scope="module")
def setup():
    supernet = load_supernet("ofa_mobilenetv3")
    subnets = paper_pareto_subnets(supernet)
    accel = SushiAccelModel(ANALYTIC_DEFAULT, with_pb=True)
    candidates = build_candidate_set(subnets, capacity_bytes=accel.pb_capacity_bytes)
    accuracy = AccuracyModel(supernet)
    table = LatencyTable.build(subnets, candidates, accel.subnet_latency_ms, accuracy.accuracy)
    return supernet, table


def make_scheduler(setup, **kwargs):
    supernet, table = setup
    defaults = dict(policy=Policy.STRICT_ACCURACY, cache_update_period=4, initial_cache_idx=0)
    defaults.update(kwargs)
    return SushiSched(table, supernet, **defaults)


class TestScheduling:
    def test_decision_fields(self, setup):
        sched = make_scheduler(setup)
        decision = sched.schedule(accuracy_constraint=0.78, latency_constraint_ms=5.0)
        assert 0 <= decision.subnet_idx < sched.table.num_subnets
        assert decision.cache_state_idx == 0
        assert decision.predicted_latency_ms > 0
        assert decision.subnet_accuracy >= 0.78

    def test_cache_updates_every_q_queries(self, setup):
        q = 4
        sched = make_scheduler(setup, cache_update_period=q)
        for i in range(12):
            decision = sched.schedule(accuracy_constraint=0.78, latency_constraint_ms=5.0)
            expected_update = (i + 1) % q == 0
            # A "cache update" decision point happens every Q queries; the new
            # state may coincide with the old one, but between update points
            # the state must not change.
            if not expected_update:
                assert decision.next_cache_state_idx == decision.cache_state_idx

    def test_constant_workload_caches_served_subnet_region(self, setup):
        supernet, table = setup
        sched = make_scheduler(setup, cache_update_period=4)
        for _ in range(8):
            decision = sched.schedule(accuracy_constraint=0.80, latency_constraint_ms=5.0)
        # After two update periods of identical queries, the cached SubGraph
        # should be the candidate closest to the served SubNet's encoding.
        served_vec = table.subnets[decision.subnet_idx].encode()
        cached_vec = table.candidates[sched.cache_state_idx].encode(supernet)
        distances = [
            np.linalg.norm(served_vec - sg.encode(supernet)) for sg in table.candidates
        ]
        assert np.linalg.norm(served_vec - cached_vec) == pytest.approx(min(distances))

    def test_queries_seen_counter(self, setup):
        sched = make_scheduler(setup)
        for _ in range(5):
            sched.schedule(accuracy_constraint=0.76, latency_constraint_ms=5.0)
        assert sched.queries_seen == 5
        assert len(sched.decisions) == 5

    def test_reset_clears_history(self, setup):
        sched = make_scheduler(setup)
        sched.schedule(accuracy_constraint=0.76, latency_constraint_ms=5.0)
        sched.reset(initial_cache_idx=0)
        assert sched.queries_seen == 0
        assert not sched.decisions
        assert sched.cache_state_idx == 0

    def test_strict_latency_policy(self, setup):
        sched = make_scheduler(setup, policy=Policy.STRICT_LATENCY)
        decision = sched.schedule(accuracy_constraint=0.80, latency_constraint_ms=1.0)
        assert decision.predicted_latency_ms <= 1.0

    def test_random_initial_cache_is_deterministic_with_rng(self, setup):
        supernet, table = setup
        a = SushiSched(table, supernet, rng=np.random.default_rng(5))
        b = SushiSched(table, supernet, rng=np.random.default_rng(5))
        assert a.cache_state_idx == b.cache_state_idx

    def test_invalid_parameters_rejected(self, setup):
        supernet, table = setup
        with pytest.raises(ValueError):
            SushiSched(table, supernet, cache_update_period=0)
        with pytest.raises(IndexError):
            SushiSched(table, supernet, initial_cache_idx=10**6)
        sched = make_scheduler(setup)
        with pytest.raises(IndexError):
            sched.reset(initial_cache_idx=10**6)

    def test_cache_update_count(self, setup):
        sched = make_scheduler(setup, cache_update_period=2)
        for _ in range(10):
            sched.schedule(accuracy_constraint=0.79, latency_constraint_ms=5.0)
        assert 0 <= sched.cache_update_count() <= 5


class TestResetSemantics:
    def test_reset_without_argument_restores_initial_cache(self, setup):
        sched = make_scheduler(setup, initial_cache_idx=1)
        # Drive enough queries that a caching decision moves the state.
        for _ in range(20):
            sched.schedule(accuracy_constraint=0.80, latency_constraint_ms=5.0)
        sched.cache_state_idx = (sched.cache_state_idx + 1) % sched.table.num_subgraphs
        sched.reset()
        assert sched.cache_state_idx == 1
        assert sched.queries_seen == 0

    def test_random_initial_cache_restored_after_reset(self, setup):
        supernet, table = setup
        sched = SushiSched(table, supernet, rng=np.random.default_rng(7))
        initial = sched.cache_state_idx
        for _ in range(12):
            sched.schedule(accuracy_constraint=0.78, latency_constraint_ms=5.0)
        sched.reset()
        assert sched.cache_state_idx == initial


class TestBatchScheduling:
    def test_schedule_batch_matches_sequential(self, setup):
        rng = np.random.default_rng(5)
        n = 37  # deliberately not a multiple of Q
        accs = rng.uniform(0.75, 0.82, size=n)
        lats = rng.uniform(0.1, 5.0, size=n)
        seq = make_scheduler(setup, cache_update_period=4)
        bat = make_scheduler(setup, cache_update_period=4)
        sequential = [
            seq.schedule(accuracy_constraint=float(a), latency_constraint_ms=float(l))
            for a, l in zip(accs, lats)
        ]
        batched = bat.schedule_batch(accs, lats)
        assert batched == sequential
        assert bat.queries_seen == seq.queries_seen == n
        assert bat.cache_state_idx == seq.cache_state_idx
        assert bat.decisions == seq.decisions

    def test_schedule_batch_resumes_mid_period(self, setup):
        sched = make_scheduler(setup, cache_update_period=4)
        ref = make_scheduler(setup, cache_update_period=4)
        accs = [0.78, 0.79, 0.80, 0.76, 0.77, 0.81]
        lats = [5.0, 1.0, 2.0, 4.0, 0.5, 3.0]
        # Two queries one at a time, then the rest in a batch: the batch must
        # align its first chunk to the caching-period boundary.
        for a, l in zip(accs[:2], lats[:2]):
            sched.schedule(accuracy_constraint=a, latency_constraint_ms=l)
        sched.schedule_batch(accs[2:], lats[2:])
        for a, l in zip(accs, lats):
            ref.schedule(accuracy_constraint=a, latency_constraint_ms=l)
        assert sched.decisions == ref.decisions
        assert sched.cache_state_idx == ref.cache_state_idx

    def test_schedule_batch_validates_shapes(self, setup):
        sched = make_scheduler(setup)
        with pytest.raises(ValueError):
            sched.schedule_batch([0.78, 0.79], [1.0])
