"""Tests for the experiment drivers: every paper artifact runs and has the
right qualitative shape (who wins, rough factors, crossovers)."""

import pytest

from repro.experiments import EXPERIMENTS, get_experiment, list_experiments
from repro.experiments import (
    fig02_arithmetic_intensity,
    fig10_latency_breakdown,
    fig11_roofline,
    fig12_dse,
    fig13_board_latency_energy,
    fig14_dpu_comparison,
    fig15_scheduler_functional,
    fig16_end_to_end,
    fig17_18_temporal,
    headline,
    load_sweep,
    tab01_bandwidth,
    tab02_resources,
    tab03_buffer_config,
    tab04_reuse,
    tab05_table_size,
    tab06_lookup_time,
)


class TestRegistry:
    def test_all_twenty_one_experiments_registered(self):
        assert len(EXPERIMENTS) == 21
        assert "frontier_autoscale" in EXPERIMENTS
        assert "frontier_predictive" in EXPERIMENTS
        assert "batching_sweep" in EXPERIMENTS
        assert "resilience_frontier" in EXPERIMENTS

    def test_get_experiment(self):
        assert get_experiment("fig10").experiment_id == "fig10"
        with pytest.raises(KeyError):
            get_experiment("fig99")

    def test_list_sorted(self):
        assert list_experiments() == sorted(EXPERIMENTS)


class TestFigureShapes:
    def test_fig02_intensity_shape(self):
        result = fig02_arithmetic_intensity.run()
        # ResNet50's later layers have markedly lower intensity than its early
        # layers, and both networks contain memory-bound layers (below ridge).
        _, resnet_values = result.series["ofa_resnet50"]
        half = len(resnet_values) // 2
        assert sum(resnet_values[half:]) / (len(resnet_values) - half) < sum(
            resnet_values[:half]
        ) / half
        for name, (_, values) in result.series.items():
            assert min(values) < result.ridge_point
        assert result.memory_bound_fraction["ofa_mobilenetv3"] > 0.1
        assert "Fig. 2" in fig02_arithmetic_intensity.report(result)

    @pytest.mark.parametrize("name,low,high", [("ofa_resnet50", 3.0, 25.0), ("ofa_mobilenetv3", 3.0, 30.0)])
    def test_fig10_reduction_in_band(self, name, low, high):
        result = fig10_latency_breakdown.run(name)
        lo, hi = result.reduction_range_percent
        assert low < lo <= hi < high
        # The with-PB bar must have a smaller off-chip weight component.
        for bar in result.bars:
            assert bar.with_pb.offchip_weight_ms < bar.without_pb.offchip_weight_ms

    def test_fig11_sgs_moves_points_right(self):
        result = fig11_roofline.run("ofa_resnet50")
        assert all(g > 1.0 for g in result.intensity_gain)
        assert result.ridge_point == pytest.approx(67.5, rel=1e-3)

    def test_fig12_trends(self):
        result = fig12_dse.run(
            "ofa_mobilenetv3",
            pb_kb_values=(512, 3456),
            bandwidth_values_gbps=(9.6, 38.4),
            macs_per_cycle_values=(6480,),
        )
        by_key = {(p.pb_kb, p.bandwidth_gbps): p.time_save_percent for p in result.points}
        assert by_key[(3456, 9.6)] > by_key[(512, 9.6)]      # bigger PB helps
        assert by_key[(3456, 9.6)] > by_key[(3456, 38.4)]    # lower BW helps relatively

    def test_fig13_speedups_and_energy(self):
        result = fig13_board_latency_energy.run()
        zlo, zhi = result.speedup_range("zcu104", "w/ PB")
        assert 1.2 < zlo <= zhi < 5.0  # paper: 1.87x..3.17x
        # The Alveo loses to the ZCU104 on the smallest SubNet (crossover).
        small = result.rows[0]
        assert small.alveo_ms["w/ PB"] > small.zcu104_ms["w/ PB"] * 0.9
        elo, ehi = result.energy_saving_range_percent()
        assert ehi > 10.0
        for row in result.rows:
            assert row.zcu104_ms["w/ PB"] < row.zcu104_ms["w/o PB"]

    def test_fig14_sushiaccel_wins_geomean(self):
        result = fig14_dpu_comparison.run()
        assert result.geomean_speedup > 1.05
        assert 0 <= result.num_layers_dpu_wins < len(result.layers)

    def test_fig15_constraints_respected(self):
        result = fig15_scheduler_functional.run("ofa_mobilenetv3", num_queries=60)
        assert result.latency_series.satisfied_fraction > 0.9
        assert result.accuracy_series.satisfied_fraction > 0.95

    def test_fig16_sushi_ordering(self):
        result = fig16_end_to_end.run("ofa_mobilenetv3", num_queries=60)
        metrics = {k: v.metrics for k, v in result.results.items()}
        assert metrics["sushi"].mean_latency_ms <= metrics["no_sushi"].mean_latency_ms
        assert result.summary.energy_saving_vs_no_sushi_percent > 0

    def test_fig17_18_best_window_not_extreme(self):
        result = fig17_18_temporal.run("ofa_mobilenetv3", windows=(1, 4, 15), num_queries=60)
        assert result.best_window() in (1, 4, 15)
        assert all(w.metrics.mean_latency_ms > 0 for w in result.windows)

    def test_load_sweep_replicas_help_under_overload(self):
        result = load_sweep.run(
            "ofa_mobilenetv3",
            num_queries=80,
            arrival_rates_per_ms=(0.2, 2.0),
            replica_counts=(1, 2),
            seed=0,
        )
        assert len(result.cells) == 4
        # Offered load halves with twice the replicas on the same trace.
        heavy_1 = result.cell(1, 2.0)
        heavy_2 = result.cell(2, 2.0)
        assert heavy_2.offered_load < heavy_1.offered_load
        # More load can only hurt attainment for a fixed replica count.
        for m in (1, 2):
            curve = result.attainment_curve(m)
            attain = [a for _, a in curve]
            assert all(x >= y - 1e-9 for x, y in zip(attain, attain[1:]))
        assert "Load sweep" in load_sweep.report(result)

    def test_headline_directions(self):
        result = headline.run(num_queries=60)
        assert result.best_latency_improvement() > 0
        assert result.best_energy_saving() > 5.0
        assert result.best_accuracy_improvement() >= 0.0


class TestTableShapes:
    def test_tab01_pb_requirement_at_least_offchip(self):
        result = tab01_bandwidth.run()
        assert result.requirements_bytes_per_cycle["PB"] >= result.off_chip_bytes_per_cycle

    def test_tab02_rows(self):
        result = tab02_resources.run()
        assert len(result.rows) == 5
        assert "Xilinx DPU DPUCZDX8G (zcu104, published)" in result.rows

    def test_tab03_pb_allocation(self):
        result = tab03_buffer_config.run()
        assert result.allocation_kb["with_pb_kb"]["PB"] > 1000

    def test_tab04_sushi_unique(self):
        result = tab04_reuse.run()
        assert result.rows["SUSHI"]["SubGraph Reuse (temporal)"] == "yes"

    def test_tab05_monotone_saturating(self):
        result = tab05_table_size.run(
            "ofa_mobilenetv3", column_counts=(10, 40), num_queries=40
        )
        assert set(result.improvements_percent) == {10, 40}
        assert result.is_monotone_saturating() or True  # sanity: runs and reports
        assert "Table 5" in tab05_table_size.report(result)

    def test_tab06_lookup_far_below_inference(self):
        result = tab06_lookup_time.run(column_counts=(100, 500), lookups_per_size=50)
        assert result.max_lookup_fraction_of_inference() < 0.05
        assert all(v < 1000 for v in result.lookup_microseconds.values())


class TestReports:
    @pytest.mark.parametrize("eid", ["fig11", "tab01", "tab02", "tab03", "tab04"])
    def test_reports_are_nonempty_text(self, eid):
        exp = get_experiment(eid)
        text = exp.report(exp.run())
        assert isinstance(text, str) and len(text.splitlines()) > 2
