"""Integration tests: the full SUSHI stack across modules.

These exercise SuperNet -> candidate set -> latency table -> scheduler ->
accelerator (+PB) -> metrics as one pipeline, checking the cross-module
invariants the paper's evaluation relies on.
"""

import numpy as np
import pytest

from repro.core.policies import Policy
from repro.serving.runner import ExperimentRunner
from repro.serving.stack import SushiStack, SushiStackConfig
from repro.serving.workload import WorkloadGenerator, WorkloadSpec


class TestEndToEndConsistency:
    @pytest.fixture(scope="class")
    def runner(self):
        return ExperimentRunner("ofa_mobilenetv3", policy=Policy.STRICT_ACCURACY, seed=3)

    @pytest.fixture(scope="class")
    def trace(self, runner):
        return runner.default_workload(num_queries=80)

    def test_scheduler_and_pb_stay_in_sync(self, runner, trace):
        runner.sushi.reset()
        runner.sushi.serve(trace)
        sched_idx = runner.sushi.scheduler.cache_state_idx
        expected = runner.sushi.pb.fit_subgraph(runner.sushi.candidates[sched_idx])
        assert runner.sushi.pb.cached.weight_bytes == expected.weight_bytes

    def test_served_latency_matches_latency_table_scale(self, runner, trace):
        runner.sushi.reset()
        records = runner.sushi.serve(trace)
        table = runner.sushi.table
        lo, hi = float(table.latencies_ms.min()), float(table.latencies_ms.max())
        for r in records:
            assert lo * 0.9 <= r.served_latency_ms <= hi * 1.1

    def test_cache_hit_ratio_close_to_paper_band(self, runner, trace):
        # Appendix A.4 reports 66 % (ResNet50) and 78 % (MobV3) vector hit
        # ratios; our substrate should land in a broad band around them.
        runner.sushi.reset()
        records = runner.sushi.serve(trace)
        mean_hit = float(np.mean([r.cache_hit_ratio for r in records[10:]]))
        assert 0.3 < mean_hit <= 1.0

    def test_three_systems_accuracy_identical_under_strict_accuracy(self, runner, trace):
        results = runner.run(trace)
        accs = {k: v.metrics.mean_accuracy for k, v in results.items()}
        assert accs["sushi"] == pytest.approx(accs["no_sushi"], abs=1e-9)

    def test_full_stack_deterministic_across_instances(self, trace):
        config = SushiStackConfig(supernet_name="ofa_mobilenetv3", seed=9)
        a = SushiStack(config).serve(trace)
        b = SushiStack(config).serve(trace)
        assert [r.subnet_name for r in a] == [r.subnet_name for r in b]

    def test_resnet50_end_to_end_smoke(self):
        runner = ExperimentRunner("ofa_resnet50", policy=Policy.STRICT_LATENCY, seed=2)
        trace = runner.default_workload(num_queries=40)
        results, summary = runner.compare(trace)
        assert results["sushi"].metrics.num_queries == 40
        assert summary.energy_saving_vs_no_sushi_percent > 0

    def test_drifting_workload_triggers_cache_updates(self):
        runner = ExperimentRunner("ofa_mobilenetv3", policy=Policy.STRICT_ACCURACY, seed=4)
        acc_range, lat_range = (0.758, 0.803), (0.3, 2.0)
        spec = WorkloadSpec(
            num_queries=80, accuracy_range=acc_range, latency_range_ms=lat_range, pattern="drift"
        )
        trace = WorkloadGenerator(spec, seed=4).generate()
        runner.sushi.reset()
        runner.sushi.serve(trace)
        # Constraints drift from loose to tight, so the served SubNets change
        # and the scheduler must have moved the cached SubGraph at least once.
        assert runner.sushi.scheduler.cache_update_count() >= 1
