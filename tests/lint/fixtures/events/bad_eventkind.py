"""Fixture: RPR005 EventKind drift — a member outside the documented
(time, kind, seq) ordering contract.

Never imported at runtime — this file exists only to be linted.
"""

import enum


class EventKind(enum.IntEnum):
    COMPLETION = 0
    ARRIVAL = 1
    FAULT = 2
    RECOVERY = 3
    PROVISIONING = 4
    CONTROL = 5
    PREEMPTION = 6  # expect: RPR005
