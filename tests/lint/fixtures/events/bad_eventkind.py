"""Fixture: RPR005 EventKind drift — a member outside the documented
(time, kind, seq) ordering contract.

Never imported at runtime — this file exists only to be linted.
"""

import enum


class EventKind(enum.IntEnum):
    COMPLETION = 0
    ARRIVAL = 1
    PROVISIONING = 2
    CONTROL = 3
    PREEMPTION = 4  # expect: RPR005
