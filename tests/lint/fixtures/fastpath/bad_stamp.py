"""Fixture: RPR003 fast-path field parity violations — one stamp site
with both a typo'd key and missing fields (two findings, same line).

Never imported at runtime — this file exists only to be linted.
"""

from dataclasses import dataclass


@dataclass(frozen=True)
class Outcome:
    first: int = 0
    second: float = 0.0
    third: int = 0


def fast_build(values):
    out_new = Outcome.__new__
    out = out_new(Outcome)  # expect: RPR003,RPR003
    d = out.__dict__
    d["first"] = values[0]
    d["secnod"] = values[1]
    return out
