"""Fixture: the same patterns bad_determinism.py flags, but outside the
``serving/engine`` / ``serving/autoscale`` scope — must lint clean.

Never imported at runtime — this file exists only to be linted.
"""

import random
import time


def now_with_jitter():
    return time.time() + random.random()
