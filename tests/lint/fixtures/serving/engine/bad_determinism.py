"""Fixture: RPR001 violations (in scope via the serving/engine path).

Never imported at runtime — this file exists only to be linted.  Lines
marked ``# expect: CODE`` must be reported with exactly that code.
"""

import random
import time
from datetime import datetime
from random import shuffle
from time import perf_counter

import numpy as np


def jitter(events):
    delay = random.random()  # expect: RPR001
    shuffle(events)  # expect: RPR001
    stamp = time.time()  # expect: RPR001
    tick = perf_counter()  # expect: RPR001
    when = datetime.now()  # expect: RPR001
    noise = np.random.normal()  # expect: RPR001
    rng = np.random.default_rng()  # expect: RPR001
    order = [item for item in {1, 2, 3}]  # expect: RPR001
    for replica in set(events):  # expect: RPR001
        order.append(replica)
    return delay, stamp, tick, when, noise, rng, order
