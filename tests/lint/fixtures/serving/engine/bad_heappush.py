"""Fixture: RPR005 heap-shape violations inside engine paths.

Never imported at runtime — this file exists only to be linted.
"""

import heapq


class BadQueue:
    def __init__(self):
        self._heap = []
        self._counter = 0

    def push(self, event):
        heapq.heappush(self._heap, (event.time_ms, event))  # expect: RPR005


def schedule(heap, when, payload):
    heapq.heappush(heap, (when, payload))  # expect: RPR005
