"""Fixture: RPR002 violations — unslotted hot-path dataclass, a
``__dict__`` stamp on a slotted class, and a dynamic attribute write.

Never imported at runtime — this file exists only to be linted.
"""

from dataclasses import dataclass


@dataclass(frozen=True)
class Record:  # expect: RPR002
    x: int


@dataclass(frozen=True, slots=True)
class Packed:
    y: int

    def __post_init__(self):
        object.__setattr__(self, "extra", 1)  # expect: RPR002


def stamp():
    obj = Packed.__new__(Packed)  # expect: RPR002
    d = obj.__dict__
    d["y"] = 1
    return obj
