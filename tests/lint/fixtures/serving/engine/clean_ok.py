"""Fixture: in-scope module full of *near misses*; must lint clean.

Exercises the legitimate versions of every pattern the checkers flag:
seeded generators, sorted set iteration, slotted hot-path dataclasses,
the canonical event heap tuple, a complete ``__dict__`` stamp on an
unslotted dataclass, and a bare ``__new__`` (no stamp) on a slotted one.
"""

import heapq
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True, slots=True)
class TinyEvent:
    time_ms: float
    kind: int


@dataclass(frozen=True)
class TinyOutcome:  # repro-lint: disable=RPR002 -- stamped via __dict__ below, mirroring SimulatedQueryOutcome
    index: int
    value: float


class TinyQueue:
    __slots__ = ("_heap", "_counter")

    def __init__(self):
        self._heap = []
        self._counter = 0

    def push(self, event):
        self._counter += 1
        heapq.heappush(
            self._heap,
            (event.time_ms, int(event.kind), self._counter, event),
        )


def build(records):
    rng = np.random.default_rng(1234)
    order = []
    for name in sorted({record.name for record in records}):
        order.append(name)
    checked = name in {"a", "b"} if order else False  # membership is fine
    outcome = TinyOutcome.__new__(TinyOutcome)
    d = outcome.__dict__
    d["index"] = 0
    d["value"] = float(rng.integers(10))
    bare = TinyEvent.__new__(TinyEvent)  # no __dict__ stamp: pickle-style
    return rng, order, checked, outcome, bare
