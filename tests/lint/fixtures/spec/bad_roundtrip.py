"""Fixture: RPR004 round-trip completeness violations.

Never imported at runtime — this file exists only to be linted.
"""

from dataclasses import dataclass


@dataclass(frozen=True)
class PartialSpec:
    alpha: float = 1.0
    beta: int = 2
    gamma: str = "x"

    def to_dict(self):  # expect: RPR004
        return {"alpha": self.alpha, "beta": self.beta}

    @classmethod
    def from_dict(cls, data):  # expect: RPR004
        return cls(alpha=data["alpha"], beta=data["beta"])


@dataclass(frozen=True)
class OneWaySpec:  # expect: RPR004
    value: int = 0

    def to_dict(self):
        return {"value": self.value}
