"""Fixture: RPR000 suppression hygiene — a bare suppression (no reason)
and a suppression naming an unregistered code.

Never imported at runtime — this file exists only to be linted.
"""

from dataclasses import dataclass


@dataclass(frozen=True)
class SloppySpec:
    alpha: float = 1.0
    beta: int = 0

    def to_dict(self):  # repro-lint: disable=RPR004
        return {"alpha": self.alpha}

    @classmethod
    def from_dict(cls, data):  # repro-lint: disable=RPR999 -- not a registered code
        return cls(**data)
