"""Fixture: a real RPR004 violation waived by a justified suppression —
must lint clean.

Never imported at runtime — this file exists only to be linted.
"""

from dataclasses import dataclass


@dataclass(frozen=True)
class WireSpec:
    alpha: float = 1.0
    legacy: int = 0

    def to_dict(self):  # repro-lint: disable=RPR004 -- legacy field is intentionally absent from the v0 wire format
        return {"alpha": self.alpha}

    @classmethod
    def from_dict(cls, data):
        return cls(**data)
