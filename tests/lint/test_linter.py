"""Tests for the repro invariant linter (codes RPR000–RPR005).

Fixture modules under ``tests/lint/fixtures/`` carry ``# expect: CODE``
markers on every line a checker must flag; the tests assert the linter
reports *exactly* those (code, line) pairs — nothing more, nothing less.
Clean fixtures (near-miss patterns, out-of-scope files, justified
suppressions) must report nothing.  Finally, the real ``src/`` tree must
be lint-clean, and stay fast.
"""

from __future__ import annotations

import json
import re
import time
from pathlib import Path

import pytest

from repro.lint import (
    CHECKERS,
    EVENT_ORDER,
    checker_codes,
    format_json,
    format_text,
    run_lint,
)

REPO_ROOT = Path(__file__).resolve().parents[2]
FIXTURES = Path(__file__).resolve().parent / "fixtures"

EXPECT_RE = re.compile(r"#\s*expect:\s*([A-Z0-9,\s]+?)\s*$")

MARKER_FIXTURES = [
    "serving/engine/bad_determinism.py",
    "serving/engine/bad_slots.py",
    "serving/engine/bad_heappush.py",
    "events/bad_eventkind.py",
    "spec/bad_roundtrip.py",
    "fastpath/bad_stamp.py",
]

CLEAN_FIXTURES = [
    "serving/engine/clean_ok.py",
    "out_of_scope/wall_clock.py",
    "suppressed/justified.py",
]


def expected_violations(path: Path) -> list[tuple[str, int]]:
    expected: list[tuple[str, int]] = []
    for lineno, line in enumerate(
        path.read_text(encoding="utf-8").splitlines(), start=1
    ):
        match = EXPECT_RE.search(line)
        if match:
            for code in match.group(1).split(","):
                expected.append((code.strip(), lineno))
    return sorted(expected)


def reported(path: Path, **kwargs) -> list[tuple[str, int]]:
    result = run_lint([path], root=REPO_ROOT, **kwargs)
    return sorted((v.code, v.line) for v in result.violations)


class TestFixtures:
    @pytest.mark.parametrize("relpath", MARKER_FIXTURES)
    def test_exact_codes_and_lines(self, relpath: str) -> None:
        path = FIXTURES / relpath
        expected = expected_violations(path)
        assert expected, f"fixture {relpath} carries no expect markers"
        assert reported(path) == expected

    @pytest.mark.parametrize("relpath", CLEAN_FIXTURES)
    def test_clean_fixtures_report_nothing(self, relpath: str) -> None:
        assert reported(FIXTURES / relpath) == []

    def test_whole_fixture_tree_matches_markers(self) -> None:
        # Linting the whole tree at once (cross-file index, scoping, and
        # suppressions all interacting) still yields exactly the union of
        # the per-file expectations plus bare.py's RPR000 pair.
        expected = []
        for relpath in MARKER_FIXTURES:
            path = FIXTURES / relpath
            rel = path.relative_to(REPO_ROOT).as_posix()
            expected.extend(
                (code, line, rel) for code, line in expected_violations(path)
            )
        bare = FIXTURES / "suppressed/bare.py"
        rel = bare.relative_to(REPO_ROOT).as_posix()
        for lineno, text in enumerate(
            bare.read_text(encoding="utf-8").splitlines(), start=1
        ):
            if "disable=" in text:
                expected.append(("RPR000", lineno, rel))
        result = run_lint([FIXTURES], root=REPO_ROOT)
        got = sorted((v.code, v.line, v.path) for v in result.violations)
        assert got == sorted(expected)


class TestSuppressions:
    def test_justified_suppression_waives_the_violation(self) -> None:
        assert reported(FIXTURES / "suppressed/justified.py") == []

    def test_bare_and_unknown_suppressions_are_rpr000(self) -> None:
        path = FIXTURES / "suppressed/bare.py"
        lines = path.read_text(encoding="utf-8").splitlines()
        bare_line = next(
            i for i, t in enumerate(lines, 1) if "disable=RPR004" in t
        )
        unknown_line = next(
            i for i, t in enumerate(lines, 1) if "disable=RPR999" in t
        )
        # The bare suppression still waives RPR004 (so the only findings
        # are the hygiene ones), but RPR000 itself is unsuppressible.
        assert reported(path) == sorted(
            [("RPR000", bare_line), ("RPR000", unknown_line)]
        )

    def test_syntax_mentions_in_docstrings_are_not_suppressions(self) -> None:
        # base.py's own docstrings spell out the disable syntax; only real
        # comments count, so the lint package itself stays clean.
        assert reported(REPO_ROOT / "src/repro/lint/base.py") == []


class TestSelect:
    def test_select_limits_to_requested_codes(self) -> None:
        path = FIXTURES / "serving/engine/bad_determinism.py"
        assert reported(path, select=["RPR005"]) == []
        all_codes = {code for code, _ in reported(path)}
        assert all_codes == {"RPR001"}

    def test_unknown_select_code_raises(self) -> None:
        with pytest.raises(ValueError, match="RPR777"):
            run_lint([FIXTURES], select=["RPR777"], root=REPO_ROOT)


class TestOutputFormats:
    def test_text_format_lists_findings_and_summary(self) -> None:
        result = run_lint([FIXTURES / "spec/bad_roundtrip.py"], root=REPO_ROOT)
        text = format_text(result)
        assert "RPR004" in text
        assert "bad_roundtrip.py" in text
        assert "violation(s)" in text

    def test_json_format_round_trips(self) -> None:
        result = run_lint([FIXTURES / "spec/bad_roundtrip.py"], root=REPO_ROOT)
        payload = json.loads(format_json(result))
        assert payload["ok"] is False
        assert payload["files_checked"] == 1
        assert payload["counts_by_code"] == {"RPR004": 3}
        codes = {v["code"] for v in payload["violations"]}
        assert codes == {"RPR004"}
        first = payload["violations"][0]
        assert set(first) == {"code", "path", "line", "col", "message"}

    def test_clean_run_reports_ok(self) -> None:
        result = run_lint([FIXTURES / "out_of_scope"], root=REPO_ROOT)
        assert result.ok
        assert "lint-clean" in format_text(result)


class TestRegistry:
    def test_registered_codes(self) -> None:
        assert checker_codes() == (
            "RPR000",
            "RPR001",
            "RPR002",
            "RPR003",
            "RPR004",
            "RPR005",
        )

    def test_every_checker_is_documented(self) -> None:
        for code, checker in CHECKERS.items():
            assert checker.code == code
            assert checker.name
            assert checker.description

    def test_event_order_matches_the_real_eventkind(self) -> None:
        # The linter's contract constant and the engine enum must agree —
        # extending one without the other is exactly the drift RPR005
        # exists to catch.
        from repro.serving.engine.events import EventKind

        members = tuple(
            member.name
            for member in sorted(EventKind, key=lambda m: m.value)
        )
        assert members == EVENT_ORDER
        assert [EventKind[name].value for name in EVENT_ORDER] == [0, 1, 2, 3, 4, 5]


class TestSourceTree:
    def test_src_is_lint_clean(self) -> None:
        result = run_lint([REPO_ROOT / "src"], root=REPO_ROOT)
        rendered = "\n".join(v.render() for v in result.violations)
        assert result.ok, f"src/ must stay lint-clean:\n{rendered}"
        assert result.files_checked > 50

    def test_full_src_lint_is_fast(self) -> None:
        start = time.monotonic()
        run_lint([REPO_ROOT / "src"], root=REPO_ROOT)
        elapsed = time.monotonic() - start
        assert elapsed < 2.0, f"lint of src/ took {elapsed:.2f}s (budget 2s)"

    def test_bad_paths_raise_oserror(self) -> None:
        with pytest.raises(OSError):
            run_lint([REPO_ROOT / "does-not-exist"], root=REPO_ROOT)
