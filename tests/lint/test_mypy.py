"""Strict-mypy gate on the two contract modules (spec.py, events.py).

mypy is an optional tool dependency: the static-analysis CI job installs
it, while environments without it skip this test (the AST linter and the
runtime round-trip tests still run everywhere).
"""

from __future__ import annotations

from pathlib import Path

import pytest

mypy_api = pytest.importorskip("mypy.api", reason="mypy not installed")

REPO_ROOT = Path(__file__).resolve().parents[2]


def test_contract_modules_pass_strict_mypy() -> None:
    stdout, stderr, status = mypy_api.run(
        ["--config-file", str(REPO_ROOT / "mypy.ini")]
    )
    assert status == 0, f"mypy failed:\n{stdout}\n{stderr}"
