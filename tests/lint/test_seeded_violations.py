"""Seeding a deliberate violation into a scratch copy of the engine is
caught — one test per RPR code, against *real* engine/spec sources.

Each test copies the relevant files into ``tmp_path`` (preserving the
``serving/engine/`` layout so path-scoped checkers engage), applies a
small textual mutation of the kind a careless patch would make, and
asserts the corresponding code fires.  The unmutated copies are also
linted once to prove the scratch layout itself is clean — so the signal
really is the seeded bug, not an artifact of copying.
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable

from repro.lint import run_lint

REPO_ROOT = Path(__file__).resolve().parents[2]
ENGINE = REPO_ROOT / "src" / "repro" / "serving" / "engine"
SPEC = REPO_ROOT / "src" / "repro" / "serving" / "spec.py"
SWEEP_SPEC = REPO_ROOT / "src" / "repro" / "sweep" / "spec.py"
TRACE_IO = REPO_ROOT / "src" / "repro" / "serving" / "trace_io.py"


def lint_codes(root: Path) -> set[str]:
    result = run_lint([root], root=root)
    return {v.code for v in result.violations}


def copy_engine(
    tmp_path: Path, mutations: dict[str, Callable[[str], str]]
) -> Path:
    """Copy named engine files into tmp_path/serving/engine, mutated."""
    target = tmp_path / "serving" / "engine"
    target.mkdir(parents=True, exist_ok=True)
    for name, mutate in mutations.items():
        source = (ENGINE / name).read_text(encoding="utf-8")
        mutated = mutate(source)
        if mutate is not _identity:
            assert mutated != source, f"mutation left {name} unchanged"
        (target / name).write_text(mutated, encoding="utf-8")
    return tmp_path


def _identity(source: str) -> str:
    return source


def test_unmutated_scratch_copies_are_clean(tmp_path: Path) -> None:
    root = copy_engine(
        tmp_path,
        {"core.py": _identity, "events.py": _identity, "results.py": _identity},
    )
    assert lint_codes(root) == set()


def test_rpr001_wall_clock_and_global_rng_in_core(tmp_path: Path) -> None:
    def mutate(source: str) -> str:
        return source + (
            "\n\ndef _jitter_ms():\n"
            "    import random\n"
            "    import time\n"
            "    return random.random() + time.time()\n"
        )

    root = copy_engine(tmp_path, {"core.py": mutate})
    assert "RPR001" in lint_codes(root)


def test_rpr002_unslotted_dataclass_in_events(tmp_path: Path) -> None:
    def mutate(source: str) -> str:
        return source + (
            "\n\n@dataclass(frozen=True)\n"
            "class LoggedEvent:\n"
            "    time_ms: float\n"
        )

    root = copy_engine(tmp_path, {"events.py": mutate})
    assert "RPR002" in lint_codes(root)


def test_rpr003_typoed_fast_drain_stamp_key(tmp_path: Path) -> None:
    # The classic fast-path drift bug: one stamped key no longer matches a
    # SimulatedQueryOutcome field.  results.py rides along so the
    # cross-file index can resolve the class.
    def mutate(source: str) -> str:
        return source.replace('d["batch_size"] = 1', 'd["batch_sz"] = 1', 1)

    root = copy_engine(tmp_path, {"core.py": mutate, "results.py": _identity})
    assert "RPR003" in lint_codes(root)


def test_rpr004_field_dropped_from_to_dict(tmp_path: Path) -> None:
    source = SPEC.read_text(encoding="utf-8")
    mutated = source.replace('"seed": self.seed,\n', "", 1)
    assert mutated != source
    (tmp_path / "spec.py").write_text(mutated, encoding="utf-8")
    assert "RPR004" in lint_codes(tmp_path)


def test_rpr004_field_dropped_from_sweep_axis_to_dict(tmp_path: Path) -> None:
    source = SWEEP_SPEC.read_text(encoding="utf-8")
    mutated = source.replace('"path": self.path, ', "", 1)
    assert mutated != source
    (tmp_path / "sweep_spec.py").write_text(mutated, encoding="utf-8")
    assert "RPR004" in lint_codes(tmp_path)


def test_rpr004_field_dropped_from_trace_fit_to_dict(tmp_path: Path) -> None:
    source = TRACE_IO.read_text(encoding="utf-8")
    mutated = source.replace('"span_ms": self.span_ms,\n', "", 1)
    assert mutated != source
    (tmp_path / "trace_io.py").write_text(mutated, encoding="utf-8")
    assert "RPR004" in lint_codes(tmp_path)


def test_rpr005_new_eventkind_member(tmp_path: Path) -> None:
    def mutate(source: str) -> str:
        return source.replace("CONTROL = 5", "CONTROL = 5\n    PREEMPTION = 6", 1)

    root = copy_engine(tmp_path, {"events.py": mutate})
    assert "RPR005" in lint_codes(root)


def test_rpr005_degenerate_heap_tuple(tmp_path: Path) -> None:
    def mutate(source: str) -> str:
        return source.replace(
            "(event.time_ms, int(event.kind), self._counter, event.payload),",
            "(event.time_ms, event.payload),",
            1,
        )

    root = copy_engine(tmp_path, {"events.py": mutate})
    assert "RPR005" in lint_codes(root)
