"""Property-based tests of batched dispatch.

Two families of invariants:

* **B=1 identity** — an engine with ``max_batch=1`` must be record-identical
  to the pre-batching engine.  The reference below re-implements the seed's
  one-query-at-a-time dispatch loop (pop, admit, serve, one COMPLETION per
  query) against the same discipline/router/admission modules, so the
  batch-capable engine is checked against the original algorithm, not
  against itself.

* **Batch invariants** — whatever the trace: pickups never exceed
  ``max_batch``; members of a shared batch start together, complete
  together, and were routed to the same replica; outcomes partition into
  exactly the recorded batch sizes.
"""

import heapq

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.metrics import QueryRecord
from repro.serving.engine import AcceleratorReplica, ServingEngine
from repro.serving.engine.admission import make_admission
from repro.serving.engine.disciplines import QueuedQuery, make_discipline
from repro.serving.engine.routing import make_router
from repro.serving.query import QueryTrace

EPS = 1e-9


class IndexedServer:
    """Synthetic backend whose service time is fixed per query index."""

    def __init__(self, services_ms):
        self.services_ms = list(services_ms)

    def serve_query(self, query, *, effective_latency_constraint_ms=None):
        return QueryRecord(
            query_index=query.index,
            accuracy_constraint=query.accuracy_constraint,
            latency_constraint_ms=query.latency_constraint_ms,
            subnet_name="synthetic",
            served_accuracy=0.78,
            served_latency_ms=self.services_ms[query.index],
        )


class SharedBatchServer(IndexedServer):
    """Synthetic backend with the shared-SubNet batch interface.

    A batch of k queries costs ``weight_ms`` once (the shared fetch) plus
    the sum of the members' per-query times — the same amortization shape
    as the SUSHI stack's batch evaluation.
    """

    def __init__(self, services_ms, weight_ms=1.0):
        super().__init__(services_ms)
        self.weight_ms = weight_ms

    def serve_query(self, query, *, effective_latency_constraint_ms=None):
        record = super().serve_query(query)
        return QueryRecord(
            query_index=record.query_index,
            accuracy_constraint=record.accuracy_constraint,
            latency_constraint_ms=record.latency_constraint_ms,
            subnet_name=record.subnet_name,
            served_accuracy=record.served_accuracy,
            served_latency_ms=self.weight_ms + record.served_latency_ms,
        )

    def serve_dispatch_batch(self, queries, *, effective_latency_constraints_ms=None):
        batch_ms = self.weight_ms + sum(self.services_ms[q.index] for q in queries)
        return [
            QueryRecord(
                query_index=q.index,
                accuracy_constraint=q.accuracy_constraint,
                latency_constraint_ms=q.latency_constraint_ms,
                subnet_name="synthetic-batch",
                served_accuracy=0.78,
                served_latency_ms=batch_ms,
            )
            for q in queries
        ]


def build_trace(constraints):
    return QueryTrace.from_constraints([0.77] * len(constraints), list(constraints))


def reference_run(trace, arrivals, services, *, num_replicas, discipline, router,
                  admission):
    """The seed's one-query-at-a-time dispatch loop, re-implemented.

    Same modules for discipline ordering, routing and admission; its own
    event loop with the engine's tie-breaking (completions before arrivals,
    then insertion order).  Returns (outcomes, dropped) as plain tuples.
    """
    replicas = [
        {
            "server": IndexedServer(services),
            "queue": make_discipline(discipline),
            "busy": None,  # (item, start, record) when serving
        }
        for _ in range(num_replicas)
    ]
    route = make_router(router)
    admit = make_admission(admission)
    needs_estimates = route.needs_service_estimates or any(
        make_discipline(discipline).needs_service_estimates for _ in range(1)
    )

    ARRIVAL, COMPLETION = 1, 0  # completions first at equal times
    heap = []
    counter = 0
    for query, arrival in zip(trace, arrivals):
        heapq.heappush(heap, (float(arrival), ARRIVAL, counter, query))
        counter += 1
    seq = 0
    outcomes = []
    dropped = []

    class _Shim:
        """Adapter giving the router the replica surface it reads
        (round_robin needs nothing, jsq reads queue_length)."""

        def __init__(self, state, index):
            self.state = state
            self.index = index

        def queue_length(self):
            return len(self.state["queue"]) + (1 if self.state["busy"] else 0)

    def dispatch(r, ridx, now):
        while True:
            item = r["queue"].pop()
            if item is None:
                return
            if not admit.admit(item, now):
                dropped.append(
                    (item.query.index, item.arrival_ms, now,
                     item.query.latency_constraint_ms, ridx)
                )
                continue
            remaining = item.query.latency_constraint_ms - (now - item.arrival_ms)
            effective = max(remaining, 1e-9)
            record = r["server"].serve_query(
                item.query, effective_latency_constraint_ms=effective
            )
            service = float(record.served_latency_ms)
            nonlocal counter
            r["busy"] = (item, now, record, now + service)
            heapq.heappush(heap, (now + service, COMPLETION, counter, ridx))
            counter += 1
            return

    while heap:
        now, kind, _, payload = heapq.heappop(heap)
        if kind == ARRIVAL:
            query = payload
            shims = [_Shim(r, i) for i, r in enumerate(replicas)]
            item = QueuedQuery(query=query, arrival_ms=now, seq=seq)
            seq += 1
            ridx = route.select(shims, item, now)
            if needs_estimates:
                item = QueuedQuery(
                    query=query, arrival_ms=now, seq=item.seq,
                    service_estimate_ms=float(query.latency_constraint_ms),
                )
            r = replicas[ridx]
            r["queue"].push(item)
            if r["busy"] is None:
                dispatch(r, ridx, now)
        else:
            ridx = payload
            r = replicas[ridx]
            item, start, record, _ = r["busy"]
            outcomes.append(
                (item.query.index, item.arrival_ms, start,
                 float(record.served_latency_ms), ridx)
            )
            r["busy"] = None
            dispatch(r, ridx, now)
    outcomes.sort()
    dropped.sort()
    return outcomes, dropped


positive = st.floats(min_value=0.01, max_value=20.0, allow_nan=False)

workload = st.integers(min_value=2, max_value=25).flatmap(
    lambda n: st.tuples(
        st.lists(positive, min_size=n, max_size=n),  # arrival gaps
        st.lists(positive, min_size=n, max_size=n),  # service times
        st.lists(positive, min_size=n, max_size=n),  # latency constraints
    )
)

disciplines = st.sampled_from(["fifo", "edf", "priority_by_slack"])
routers = st.sampled_from(["round_robin", "jsq"])
admissions = st.sampled_from(["admit_all", "drop_expired"])


class TestBatchOneIdentity:
    @given(workload, disciplines, routers, admissions, st.integers(1, 3))
    @settings(max_examples=60, deadline=None)
    def test_max_batch_one_matches_the_seed_dispatch_loop(
        self, wl, discipline, router, admission, num_replicas
    ):
        """max_batch=1 reproduces the pre-batching engine, outcome for outcome."""
        gaps, services, constraints = wl
        trace = build_trace(constraints)
        arrivals = np.cumsum(gaps)
        engine = ServingEngine(
            [
                AcceleratorReplica(
                    IndexedServer(services), discipline=discipline, max_batch=1
                )
                for _ in range(num_replicas)
            ],
            router=router,
            admission=admission,
        )
        result = engine.run(trace, arrivals)
        got_outcomes = [
            (o.query_index, o.arrival_ms, o.start_ms, o.service_ms, o.replica_index)
            for o in result.outcomes
        ]
        got_dropped = [
            (d.query_index, d.arrival_ms, d.dropped_at_ms,
             d.latency_constraint_ms, d.replica_index)
            for d in result.dropped
        ]
        want_outcomes, want_dropped = reference_run(
            trace, arrivals, services,
            num_replicas=num_replicas, discipline=discipline,
            router=router, admission=admission,
        )
        assert got_outcomes == want_outcomes
        assert got_dropped == want_dropped
        assert all(o.batch_size == 1 for o in result.outcomes)

    @given(workload, disciplines, st.integers(1, 3))
    @settings(max_examples=30, deadline=None)
    def test_explicit_and_default_batching_agree(self, wl, discipline, num_replicas):
        """Constructing replicas without batching args equals max_batch=1."""
        gaps, services, constraints = wl
        trace = build_trace(constraints)
        arrivals = np.cumsum(gaps)

        def run(**kwargs):
            engine = ServingEngine(
                [
                    AcceleratorReplica(
                        IndexedServer(services), discipline=discipline, **kwargs
                    )
                    for _ in range(num_replicas)
                ]
            )
            return engine.run(trace, arrivals)

        assert run().outcomes == run(max_batch=1).outcomes


class TestBatchInvariants:
    @given(workload, st.integers(2, 8), st.integers(1, 3), admissions)
    @settings(max_examples=60, deadline=None)
    def test_shared_batches_form_and_complete_as_units(
        self, wl, max_batch, num_replicas, admission
    ):
        gaps, services, constraints = wl
        trace = build_trace(constraints)
        arrivals = np.cumsum(gaps)
        engine = ServingEngine(
            [
                AcceleratorReplica(
                    SharedBatchServer(services),
                    max_batch=max_batch,
                    batch_policy="shared_subnet",
                )
                for _ in range(num_replicas)
            ],
            router="jsq",
            admission=admission,
        )
        result = engine.run(trace, arrivals)
        # Outcomes partition into pickups of the recorded sizes.
        batches = {}
        for o in result.outcomes:
            assert 1 <= o.batch_size <= max_batch
            assert o.start_ms >= o.arrival_ms - EPS
            batches.setdefault((o.replica_index, o.start_ms), []).append(o)
        for members in batches.values():
            sizes = {o.batch_size for o in members}
            assert sizes == {len(members)}
            # Shared batches complete together with one shared service time.
            assert len({o.completion_ms for o in members}) == 1
            assert len({o.service_ms for o in members}) == 1
        # Per-replica stats agree with the partition.
        by_replica = {}
        for (ridx, _), members in batches.items():
            by_replica[ridx] = by_replica.get(ridx, 0) + 1
        for stats in result.replica_stats:
            assert stats.num_batches == by_replica.get(stats.replica_index, 0)
        assert result.num_batches == len(batches)
        if result.outcomes:
            assert result.mean_batch_occupancy == pytest.approx(
                result.num_served / len(batches)
            )

    @given(workload, st.integers(2, 8))
    @settings(max_examples=40, deadline=None)
    def test_batched_pool_never_idles_while_work_waits(self, wl, max_batch):
        """Work conservation survives batching on a single replica."""
        gaps, services, constraints = wl
        trace = build_trace(constraints)
        arrivals = np.cumsum(gaps)
        engine = ServingEngine(
            [AcceleratorReplica(SharedBatchServer(services), max_batch=max_batch)]
        )
        result = engine.run(trace, arrivals)
        picked = sorted({(o.start_ms, o.completion_ms) for o in result.outcomes})
        prev_end = 0.0
        for start, end in picked:
            assert start >= prev_end - EPS  # pickups never overlap
            prev_end = end
        assert sorted(o.query_index for o in result.outcomes) == list(range(len(gaps)))
