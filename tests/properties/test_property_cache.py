"""Property-based tests on Persistent Buffer capacity and hit invariants."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.accelerator.persistent_buffer import CachedSubGraph, PersistentBuffer
from repro.supernet.zoo import load_supernet, paper_pareto_subnets

_SUPERNET = load_supernet("ofa_mobilenetv3")
_SUBNETS = paper_pareto_subnets(_SUPERNET)
_MAX_BYTES = max(sn.weight_bytes for sn in _SUBNETS)

capacities = st.integers(min_value=0, max_value=2 * _MAX_BYTES)
subnet_idx = st.integers(min_value=0, max_value=len(_SUBNETS) - 1)


class TestPBInvariants:
    @given(capacities, subnet_idx)
    @settings(max_examples=40, deadline=None)
    def test_occupancy_never_exceeds_capacity(self, capacity, idx):
        pb = PersistentBuffer(capacity)
        pb.load(CachedSubGraph.from_subnet(_SUBNETS[idx]))
        assert pb.occupancy_bytes <= pb.capacity_bytes

    @given(capacities, subnet_idx, subnet_idx)
    @settings(max_examples=40, deadline=None)
    def test_hit_bytes_bounded(self, capacity, cache_idx, serve_idx):
        pb = PersistentBuffer(capacity)
        pb.load(CachedSubGraph.from_subnet(_SUBNETS[cache_idx]))
        served = _SUBNETS[serve_idx]
        hits = pb.hit_bytes(served)
        assert 0 <= hits <= min(pb.occupancy_bytes, served.weight_bytes)

    @given(subnet_idx, subnet_idx)
    @settings(max_examples=30, deadline=None)
    def test_reload_fetch_never_exceeds_new_contents(self, first_idx, second_idx):
        pb = PersistentBuffer(10**9)
        pb.load(CachedSubGraph.from_subnet(_SUBNETS[first_idx]))
        fetched = pb.load(CachedSubGraph.from_subnet(_SUBNETS[second_idx]))
        assert 0 <= fetched <= _SUBNETS[second_idx].weight_bytes

    @given(capacities, subnet_idx)
    @settings(max_examples=40, deadline=None)
    def test_vector_hit_ratio_in_unit_interval(self, capacity, idx):
        pb = PersistentBuffer(capacity)
        pb.load(CachedSubGraph.from_subnet(_SUBNETS[idx]))
        for subnet in _SUBNETS:
            assert 0.0 <= pb.vector_hit_ratio(subnet) <= 1.0 + 1e-12

    @given(subnet_idx)
    @settings(max_examples=20, deadline=None)
    def test_unbounded_pb_full_hit_on_cached_subnet(self, idx):
        pb = PersistentBuffer(10**9)
        subnet = _SUBNETS[idx]
        pb.load(CachedSubGraph.from_subnet(subnet))
        assert pb.hit_bytes(subnet) == subnet.weight_bytes
