"""Property-based tests of the serving engine's queueing invariants.

Synthetic servers with hypothesis-generated arrival gaps, service times and
latency constraints exercise the discrete-event core across disciplines,
routers and admission policies; the invariants are classical queueing facts
that must hold for *every* trace, not just the seeded ones.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.metrics import QueryRecord
from repro.serving.engine import AcceleratorReplica, ServingEngine
from repro.serving.query import QueryTrace

EPS = 1e-9


class IndexedServer:
    """Synthetic backend whose service time is fixed per query index."""

    def __init__(self, services_ms):
        self.services_ms = list(services_ms)

    def serve_query(self, query, *, effective_latency_constraint_ms=None):
        return QueryRecord(
            query_index=query.index,
            accuracy_constraint=query.accuracy_constraint,
            latency_constraint_ms=query.latency_constraint_ms,
            subnet_name="synthetic",
            served_accuracy=0.78,
            served_latency_ms=self.services_ms[query.index],
        )


def build_trace(constraints):
    return QueryTrace.from_constraints([0.77] * len(constraints), list(constraints))


positive = st.floats(min_value=0.01, max_value=20.0, allow_nan=False)

workload = st.integers(min_value=2, max_value=25).flatmap(
    lambda n: st.tuples(
        st.lists(positive, min_size=n, max_size=n),  # arrival gaps
        st.lists(positive, min_size=n, max_size=n),  # service times
        st.lists(positive, min_size=n, max_size=n),  # latency constraints
    )
)

disciplines = st.sampled_from(["fifo", "edf", "priority_by_slack"])
routers = st.sampled_from(["round_robin", "jsq", "least_loaded"])
admissions = st.sampled_from(["admit_all", "drop_expired"])


def run_engine(gaps, services, constraints, *, num_replicas=1, discipline="fifo",
               router="round_robin", admission="admit_all"):
    trace = build_trace(constraints)
    arrivals = np.cumsum(gaps)
    replicas = [
        AcceleratorReplica(IndexedServer(services), discipline=discipline, index=i)
        for i in range(num_replicas)
    ]
    engine = ServingEngine(replicas, router=router, admission=admission)
    return engine.run(trace, arrivals), arrivals


class TestQueueingInvariants:
    @given(workload, disciplines, routers, admissions, st.integers(1, 3))
    @settings(max_examples=60, deadline=None)
    def test_start_never_precedes_arrival(
        self, wl, discipline, router, admission, num_replicas
    ):
        gaps, services, constraints = wl
        result, _ = run_engine(
            gaps, services, constraints,
            num_replicas=num_replicas, discipline=discipline,
            router=router, admission=admission,
        )
        for o in result.outcomes:
            assert o.start_ms >= o.arrival_ms - EPS

    @given(workload, disciplines, routers, st.integers(1, 3))
    @settings(max_examples=60, deadline=None)
    def test_completions_never_overlap_per_replica(
        self, wl, discipline, router, num_replicas
    ):
        gaps, services, constraints = wl
        result, _ = run_engine(
            gaps, services, constraints,
            num_replicas=num_replicas, discipline=discipline, router=router,
        )
        for r in range(num_replicas):
            mine = sorted(
                (o for o in result.outcomes if o.replica_index == r),
                key=lambda o: o.start_ms,
            )
            for prev, nxt in zip(mine, mine[1:]):
                assert nxt.start_ms >= prev.completion_ms - EPS

    @given(workload, disciplines)
    @settings(max_examples=60, deadline=None)
    def test_single_replica_work_conservation(self, wl, discipline):
        """The server never idles while work waits: start = max(arrival, prev completion)."""
        gaps, services, constraints = wl
        result, _ = run_engine(gaps, services, constraints, discipline=discipline)
        ordered = sorted(result.outcomes, key=lambda o: o.start_ms)
        prev_completion = 0.0
        for o in ordered:
            assert o.start_ms == pytest.approx(
                max(o.arrival_ms, prev_completion), abs=1e-6
            )
            prev_completion = o.completion_ms
        # Everything offered was served (admit_all) exactly once.
        assert sorted(o.query_index for o in result.outcomes) == list(
            range(len(gaps))
        )

    @given(workload)
    @settings(max_examples=40, deadline=None)
    def test_slo_attainment_monotone_in_load(self, wl):
        """Scaling all arrival gaps down (more load) never improves any response.

        Per-query response times weakly increase with load (Lindley
        recursion), hence SLO attainment is monotone non-increasing.  The
        attainment comparison allows a tiny tolerance on the deadline so
        exact constraint-equals-response boundaries don't flip on 1-ulp
        float noise.
        """
        gaps, services, constraints = wl
        gaps = np.asarray(gaps)
        responses = []
        attainments = []
        for squeeze in (1.0, 2.0, 4.0):
            trace = build_trace(constraints)
            arrivals = np.cumsum(gaps / squeeze)
            engine = ServingEngine([AcceleratorReplica(IndexedServer(services))])
            result = engine.run(trace, arrivals)
            by_index = {o.query_index: o for o in result.outcomes}
            responses.append([by_index[i].response_ms for i in range(len(gaps))])
            attainments.append(
                np.mean(
                    [
                        by_index[i].response_ms <= constraints[i] + 1e-6
                        for i in range(len(gaps))
                    ]
                )
            )
        for light, heavy in zip(responses, responses[1:]):
            for a, b in zip(light, heavy):
                assert b >= a - 1e-6
        assert all(a >= b - EPS for a, b in zip(attainments, attainments[1:]))

    @given(workload, st.integers(2, 3))
    @settings(max_examples=60, deadline=None)
    def test_jsq_never_queues_while_a_replica_idles(self, wl, num_replicas):
        """Under JSQ, a query only waits if every replica was busy at its arrival."""
        gaps, services, constraints = wl
        result, _ = run_engine(
            gaps, services, constraints, num_replicas=num_replicas, router="jsq"
        )
        busy = {
            r: [
                (o.start_ms, o.completion_ms)
                for o in result.outcomes
                if o.replica_index == r
            ]
            for r in range(num_replicas)
        }
        for o in result.outcomes:
            if o.queueing_ms <= EPS:
                continue
            t = o.arrival_ms
            for r in range(num_replicas):
                assert any(
                    start <= t + EPS and t < end - EPS for start, end in busy[r]
                ), f"query {o.query_index} waited while replica {r} idled"

    @given(workload, st.integers(1, 3))
    @settings(max_examples=40, deadline=None)
    def test_drop_accounting_partitions_the_trace(self, wl, num_replicas):
        gaps, services, constraints = wl
        result, _ = run_engine(
            gaps, services, constraints,
            num_replicas=num_replicas, admission="drop_expired",
        )
        served = {o.query_index for o in result.outcomes}
        dropped = {d.query_index for d in result.dropped}
        assert served | dropped == set(range(len(gaps)))
        assert not served & dropped
        assert sum(s.num_served for s in result.replica_stats) == len(served)
        assert sum(s.num_dropped for s in result.replica_stats) == len(dropped)
        # A dropped query's deadline had indeed expired when it was shed.
        for d in result.dropped:
            assert d.dropped_at_ms >= d.arrival_ms + d.latency_constraint_ms - EPS
