"""Property-based identity tests of the engine fast path and event queues.

Two families of properties:

* **Execution-strategy identity** — for *every* hypothesis-generated
  workload (arrival gaps, service times, latency constraints) and policy
  combination, the fast loop and the sharded loop must produce results
  bit-identical to the reference Event/EventHeap loop.  Equality here is
  structural equality of frozen dataclasses over raw floats, so even a
  1-ulp reordering of arithmetic would fail.

* **Queue-ordering contracts** — :meth:`EventHeap.pop_batch` must equal
  one-at-a-time pops (same-timestamp interleavings included), and
  :class:`ArrayEventQueue` (arrival cursor + dynamic-event heap) must pop
  in exactly the order :class:`EventHeap` would when everything is pushed
  into one heap.  Times are drawn from a coarse grid so equal timestamps —
  where the (time, kind, insertion order) tie-break actually matters — are
  common rather than measure-zero.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.metrics import QueryRecord
from repro.serving.engine import AcceleratorReplica, ServingEngine
from repro.serving.engine.events import ArrayEventQueue, Event, EventHeap, EventKind
from repro.serving.query import QueryTrace


class IndexedServer:
    """Synthetic backend whose service time is fixed per query index."""

    def __init__(self, services_ms):
        self.services_ms = list(services_ms)

    def serve_query(self, query, *, effective_latency_constraint_ms=None):
        return QueryRecord(
            query_index=query.index,
            accuracy_constraint=query.accuracy_constraint,
            latency_constraint_ms=query.latency_constraint_ms,
            subnet_name="synthetic",
            served_accuracy=0.78,
            served_latency_ms=self.services_ms[query.index],
        )


positive = st.floats(min_value=0.01, max_value=20.0, allow_nan=False)

workload = st.integers(min_value=2, max_value=25).flatmap(
    lambda n: st.tuples(
        st.lists(positive, min_size=n, max_size=n),  # arrival gaps
        st.lists(positive, min_size=n, max_size=n),  # service times
        st.lists(positive, min_size=n, max_size=n),  # latency constraints
    )
)

disciplines = st.sampled_from(["fifo", "edf", "priority_by_slack"])
routers = st.sampled_from(["round_robin", "jsq", "least_loaded"])
admissions = st.sampled_from(["admit_all", "drop_expired"])


def run_pair(wl, *, num_replicas, discipline, router, admission, **fast_kwargs):
    """(reference result, fast/shard result) on identical fresh engines."""
    gaps, services, constraints = wl
    trace = QueryTrace.from_constraints([0.77] * len(gaps), list(constraints))
    arrivals = np.cumsum(gaps)

    def engine():
        return ServingEngine(
            [
                AcceleratorReplica(IndexedServer(services), discipline=discipline)
                for _ in range(num_replicas)
            ],
            router=router,
            admission=admission,
        )

    return engine().run(trace, arrivals), engine().run(trace, arrivals, **fast_kwargs)


def assert_identical(fast, ref):
    assert fast.outcomes == ref.outcomes
    assert fast.dropped == ref.dropped
    assert fast.replica_stats == ref.replica_stats
    assert fast.duration_ms == ref.duration_ms


class TestExecutionStrategyIdentity:
    @given(workload, disciplines, routers, admissions, st.integers(1, 3))
    @settings(max_examples=60, deadline=None)
    def test_fast_path_is_bit_identical(
        self, wl, discipline, router, admission, num_replicas
    ):
        ref, fast = run_pair(
            wl, num_replicas=num_replicas, discipline=discipline,
            router=router, admission=admission, fast_path=True,
        )
        assert_identical(fast, ref)

    @given(workload, disciplines, admissions, st.integers(1, 3))
    @settings(max_examples=60, deadline=None)
    def test_sharded_is_bit_identical(
        self, wl, discipline, admission, num_replicas
    ):
        ref, shard = run_pair(
            wl, num_replicas=num_replicas, discipline=discipline,
            router="round_robin", admission=admission, shard=True,
        )
        assert_identical(shard, ref)


# Coarse grids make equal timestamps common, so the tie-break contract —
# kind order then insertion order — is exercised on nearly every example.
grid_times = st.integers(min_value=0, max_value=4).map(float)
kinds = st.sampled_from(list(EventKind))
events = st.lists(st.tuples(grid_times, kinds), min_size=1, max_size=30)


class TestEventHeapContract:
    @given(events)
    @settings(max_examples=100, deadline=None)
    def test_pop_batch_equals_sequential_pops(self, items):
        sequential, batched = EventHeap(), EventHeap()
        for i, (t, kind) in enumerate(items):
            sequential.push(Event(t, kind, i))
            batched.push(Event(t, kind, i))
        one_at_a_time = [sequential.pop() for _ in range(len(items))]
        drained = []
        while batched:
            batch = batched.pop_batch()
            assert len({e.time_ms for e in batch}) == 1  # one timestamp per batch
            drained.extend(batch)
        assert drained == one_at_a_time

    @given(events)
    @settings(max_examples=100, deadline=None)
    def test_same_timestamp_pops_follow_kind_then_insertion(self, items):
        heap = EventHeap()
        for i, (t, kind) in enumerate(items):
            heap.push(Event(t, kind, i))
        popped = [heap.pop() for _ in range(len(items))]
        keys = [(e.time_ms, int(e.kind), e.payload) for e in popped]
        assert keys == sorted(keys)  # payload is insertion order


dynamic_kinds = st.sampled_from(
    [EventKind.COMPLETION, EventKind.PROVISIONING, EventKind.CONTROL]
)


class TestArrayEventQueueContract:
    @given(
        st.lists(grid_times, min_size=0, max_size=15),  # arrival gaps
        st.lists(st.tuples(grid_times, dynamic_kinds), max_size=15),
    )
    @settings(max_examples=100, deadline=None)
    def test_matches_event_heap_order(self, gaps, dynamic):
        """The cursor+heap queue pops in EventHeap's exact global order.

        The reference heap receives arrivals first, then the dynamic
        events, mirroring ``run()``'s seeding order; the array queue holds
        the same arrivals as its buffer and only the dynamic events in its
        heap.  Both must drain identically, payload included (the array
        queue reports an arrival as its buffer index).
        """
        arrivals = np.cumsum(gaps).tolist()
        heap = EventHeap()
        for i, t in enumerate(arrivals):
            heap.push(Event(t, EventKind.ARRIVAL, i))
        queue = ArrayEventQueue(arrivals)
        for j, (t, kind) in enumerate(dynamic):
            heap.push(Event(t, kind, ("dyn", j)))
            queue.push(Event(t, kind, ("dyn", j)))

        assert len(queue) == len(arrivals) + len(dynamic)
        expected = [heap.pop() for _ in range(len(arrivals) + len(dynamic))]
        got = [queue.pop() for _ in range(len(expected))]
        assert got == [(e.time_ms, int(e.kind), e.payload) for e in expected]
        assert not queue
        try:
            queue.pop()
        except IndexError:
            pass
        else:  # pragma: no cover
            raise AssertionError("pop from empty ArrayEventQueue must raise")
