"""Property-based tests of the fault plane (``serving/engine/faults``).

Three families of properties, over hypothesis-generated workloads:

* **The ``faults: null`` rung** — an engine with no injector, and an
  engine with an *inert* injector (all processes disabled — the runtime
  image of ``FaultSpec()``'s defaults), must both be bit-identical to the
  pre-fault engine: same outcomes, drops, replica stats and duration on
  the reference loop, the fast path and the sharded path.  Equality is
  structural equality of frozen dataclasses over raw floats, so a 1-ulp
  divergence fails.

* **Execution-strategy identity under live faults** — with crashes,
  stragglers and transient dispatch failures actually firing, the fast
  path must still match the reference loop bit for bit: fault injection
  is semantics, the fast path is not.

* **Determinism** — a faulty engine re-run after ``reset()`` (including
  pending fault events, retries in flight at the end of the first run,
  and the injector's RNG position) replays identical records; recording
  the run changes nothing.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.metrics import QueryRecord
from repro.serving.engine import AcceleratorReplica, FaultInjector, ServingEngine
from repro.serving.obs import TraceRecorder
from repro.serving.query import QueryTrace


class IndexedServer:
    """Synthetic backend whose service time is fixed per query index."""

    def __init__(self, services_ms):
        self.services_ms = list(services_ms)

    def serve_query(self, query, *, effective_latency_constraint_ms=None):
        return QueryRecord(
            query_index=query.index,
            accuracy_constraint=query.accuracy_constraint,
            latency_constraint_ms=query.latency_constraint_ms,
            subnet_name="synthetic",
            served_accuracy=0.78,
            served_latency_ms=self.services_ms[query.index],
        )


positive = st.floats(min_value=0.01, max_value=20.0, allow_nan=False)

workload = st.integers(min_value=2, max_value=25).flatmap(
    lambda n: st.tuples(
        st.lists(positive, min_size=n, max_size=n),  # arrival gaps
        st.lists(positive, min_size=n, max_size=n),  # service times
        st.lists(positive, min_size=n, max_size=n),  # latency constraints
    )
)

disciplines = st.sampled_from(["fifo", "edf", "priority_by_slack"])
routers = st.sampled_from(["round_robin", "jsq", "least_loaded"])
admissions = st.sampled_from(["admit_all", "drop_expired"])

#: Live fault processes aggressive enough to fire inside the short
#: hypothesis workloads (scales are in the same ms units as the gaps).
fault_params = st.fixed_dictionaries(
    {
        "seed": st.integers(min_value=0, max_value=15),
        "crash_mtbf_ms": st.floats(min_value=5.0, max_value=60.0),
        "straggler_mtbf_ms": st.floats(min_value=5.0, max_value=60.0),
        "straggler_duration_ms": st.floats(min_value=0.5, max_value=10.0),
        "straggler_factor": st.floats(min_value=1.0, max_value=5.0),
        "dispatch_failure_prob": st.floats(min_value=0.0, max_value=0.4),
        "max_attempts": st.integers(min_value=1, max_value=4),
        "backoff_base_ms": st.floats(min_value=0.1, max_value=2.0),
    }
)


def build_engine(wl, *, num_replicas, discipline, router, admission, faults=None):
    gaps, services, constraints = wl
    engine = ServingEngine(
        [
            AcceleratorReplica(IndexedServer(services), discipline=discipline)
            for _ in range(num_replicas)
        ],
        router=router,
        admission=admission,
    )
    engine.faults = faults
    return engine


def run_one(wl, *, faults=None, recorder=False, **engine_kwargs):
    gaps, services, constraints = wl
    trace = QueryTrace.from_constraints([0.77] * len(gaps), list(constraints))
    arrivals = np.cumsum(gaps)
    engine = build_engine(wl, faults=faults, **engine_kwargs)
    if recorder:
        engine.recorder = TraceRecorder()
    return engine, engine.run(trace, arrivals)


def assert_identical(result, reference):
    assert result.outcomes == reference.outcomes
    assert result.dropped == reference.dropped
    assert result.replica_stats == reference.replica_stats
    assert result.duration_ms == reference.duration_ms


class TestFaultsNullRung:
    @given(workload, disciplines, routers, admissions, st.integers(1, 3))
    @settings(max_examples=60, deadline=None)
    def test_inert_injector_is_bit_identical_reference_and_fast(
        self, wl, discipline, router, admission, num_replicas
    ):
        """FaultSpec()'s defaults must cost nothing and change nothing.

        The inert injector forces the fault-aware code paths (``_drain``
        with a live ``fi``, ``_drain_array`` instead of ``_fast_drain``)
        whose every hook must degenerate to the pre-fault behavior.
        """
        kwargs = dict(
            num_replicas=num_replicas,
            discipline=discipline,
            router=router,
            admission=admission,
        )
        gaps, services, constraints = wl
        trace = QueryTrace.from_constraints([0.77] * len(gaps), list(constraints))
        arrivals = np.cumsum(gaps)

        plain = build_engine(wl, **kwargs).run(trace, arrivals)
        for fast_path in (False, True):
            inert = build_engine(wl, faults=FaultInjector(), **kwargs)
            assert_identical(
                inert.run(trace, arrivals, fast_path=fast_path), plain
            )
            assert inert.faults.num_crashes == 0
            assert inert.faults.num_dispatch_failures == 0

    @given(workload, disciplines, admissions, st.integers(1, 3))
    @settings(max_examples=30, deadline=None)
    def test_no_injector_identical_across_all_three_paths(
        self, wl, discipline, admission, num_replicas
    ):
        """With ``faults=None`` every execution strategy still agrees.

        Guards the dispatch changes this layer made to ``run()``: the
        fault-free engine must keep taking the pre-fault fast/shard paths
        bit-identically (shard requires round-robin routing).
        """
        kwargs = dict(
            num_replicas=num_replicas,
            discipline=discipline,
            router="round_robin",
            admission=admission,
        )
        gaps, services, constraints = wl
        trace = QueryTrace.from_constraints([0.77] * len(gaps), list(constraints))
        arrivals = np.cumsum(gaps)

        reference = build_engine(wl, **kwargs).run(trace, arrivals)
        fast = build_engine(wl, **kwargs).run(trace, arrivals, fast_path=True)
        shard = build_engine(wl, **kwargs).run(trace, arrivals, shard=True)
        assert_identical(fast, reference)
        assert_identical(shard, reference)

    def test_sharded_run_rejects_live_faults(self):
        wl = ([1.0] * 4, [1.0] * 4, [10.0] * 4)
        gaps, services, constraints = wl
        trace = QueryTrace.from_constraints([0.77] * 4, list(constraints))
        engine = build_engine(
            wl,
            num_replicas=2,
            discipline="fifo",
            router="round_robin",
            admission="admit_all",
            faults=FaultInjector(crash_mtbf_ms=5.0),
        )
        with pytest.raises(ValueError, match="fault"):
            engine.run(trace, np.cumsum(gaps), shard=True)


class TestLiveFaultIdentityAndDeterminism:
    @given(workload, fault_params, disciplines, routers, admissions, st.integers(1, 3))
    @settings(max_examples=60, deadline=None)
    def test_fast_path_identical_under_live_faults(
        self, wl, params, discipline, router, admission, num_replicas
    ):
        kwargs = dict(
            num_replicas=num_replicas,
            discipline=discipline,
            router=router,
            admission=admission,
        )
        gaps, services, constraints = wl
        trace = QueryTrace.from_constraints([0.77] * len(gaps), list(constraints))
        arrivals = np.cumsum(gaps)

        reference = build_engine(wl, faults=FaultInjector(**params), **kwargs).run(
            trace, arrivals
        )
        fast = build_engine(wl, faults=FaultInjector(**params), **kwargs).run(
            trace, arrivals, fast_path=True
        )
        assert_identical(fast, reference)
        assert fast.num_crashes == reference.num_crashes
        assert fast.drop_reasons == reference.drop_reasons

    @given(workload, fault_params, disciplines, routers, admissions, st.integers(1, 3))
    @settings(max_examples=60, deadline=None)
    def test_reset_replays_faulty_runs_identically(
        self, wl, params, discipline, router, admission, num_replicas
    ):
        engine, first = run_one(
            wl,
            faults=FaultInjector(**params),
            num_replicas=num_replicas,
            discipline=discipline,
            router=router,
            admission=admission,
        )
        gaps, services, constraints = wl
        trace = QueryTrace.from_constraints([0.77] * len(gaps), list(constraints))
        second = engine.run(trace, np.cumsum(gaps))  # reset=True default
        assert_identical(second, first)
        assert second.num_crashes == first.num_crashes

    @given(workload, fault_params, disciplines, routers, admissions, st.integers(1, 3))
    @settings(max_examples=40, deadline=None)
    def test_recording_changes_nothing_under_faults(
        self, wl, params, discipline, router, admission, num_replicas
    ):
        kwargs = dict(
            num_replicas=num_replicas,
            discipline=discipline,
            router=router,
            admission=admission,
        )
        _, plain = run_one(wl, faults=FaultInjector(**params), **kwargs)
        engine, observed = run_one(
            wl, faults=FaultInjector(**params), recorder=True, **kwargs
        )
        assert_identical(observed, plain)
        # Every injected fault the run saw is on the trace, every fault
        # kind recorded is a real one.
        trace = observed.trace
        assert trace is not None
        crashes = [f for f in trace.faults if f.kind == "crash"]
        assert len(crashes) == observed.num_crashes
        assert {f.kind for f in trace.faults} <= {
            "crash",
            "straggle",
            "straggle_end",
            "dispatch_failure",
        }
