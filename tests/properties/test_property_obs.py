"""Property-based tests of the flight recorder (``serving/obs``).

Two families of properties, over hypothesis-generated workloads:

* **Observation identity** — attaching a :class:`TraceRecorder` must not
  change the simulation: outcomes, drops, replica stats and duration are
  bit-identical to an unobserved run, on the reference loop, the fast
  path and the sharded path alike.  Equality is structural equality of
  frozen dataclasses over raw floats, so a 1-ulp divergence fails.

* **Span well-formedness** — the recorded trace accounts for every query
  exactly once (one span per outcome, one per drop), span timestamps are
  monotone (arrival ≤ dispatch ≤ completion), and the Chrome trace
  export opens and closes every async span exactly once with
  non-decreasing event timestamps.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.metrics import QueryRecord
from repro.serving.engine import AcceleratorReplica, ServingEngine
from repro.serving.obs import TraceRecorder, chrome_trace
from repro.serving.query import QueryTrace


class IndexedServer:
    """Synthetic backend whose service time is fixed per query index."""

    def __init__(self, services_ms):
        self.services_ms = list(services_ms)

    def serve_query(self, query, *, effective_latency_constraint_ms=None):
        return QueryRecord(
            query_index=query.index,
            accuracy_constraint=query.accuracy_constraint,
            latency_constraint_ms=query.latency_constraint_ms,
            subnet_name="synthetic",
            served_accuracy=0.78,
            served_latency_ms=self.services_ms[query.index],
        )


positive = st.floats(min_value=0.01, max_value=20.0, allow_nan=False)

workload = st.integers(min_value=2, max_value=25).flatmap(
    lambda n: st.tuples(
        st.lists(positive, min_size=n, max_size=n),  # arrival gaps
        st.lists(positive, min_size=n, max_size=n),  # service times
        st.lists(positive, min_size=n, max_size=n),  # latency constraints
    )
)

disciplines = st.sampled_from(["fifo", "edf", "priority_by_slack"])
routers = st.sampled_from(["round_robin", "jsq", "least_loaded"])
admissions = st.sampled_from(["admit_all", "drop_expired"])


def run_pair(wl, *, num_replicas, discipline, router, admission, **run_kwargs):
    """(unobserved result, observed result) on identical fresh engines."""
    gaps, services, constraints = wl
    trace = QueryTrace.from_constraints([0.77] * len(gaps), list(constraints))
    arrivals = np.cumsum(gaps)

    def engine():
        return ServingEngine(
            [
                AcceleratorReplica(IndexedServer(services), discipline=discipline)
                for _ in range(num_replicas)
            ],
            router=router,
            admission=admission,
        )

    plain = engine().run(trace, arrivals, **run_kwargs)
    observed_engine = engine()
    observed_engine.recorder = TraceRecorder()
    observed = observed_engine.run(trace, arrivals, **run_kwargs)
    return plain, observed


def assert_identical(observed, plain):
    assert observed.outcomes == plain.outcomes
    assert observed.dropped == plain.dropped
    assert observed.replica_stats == plain.replica_stats
    assert observed.duration_ms == plain.duration_ms


def assert_well_formed(result):
    trace = result.trace
    assert trace is not None
    assert len(trace.spans) == len(result.outcomes) + len(result.dropped)
    served = {s.query_index: s for s in trace.spans if s.status == "served"}
    dropped = {s.query_index: s for s in trace.spans if s.status == "dropped"}
    # Every dispatched query closes exactly one span, every drop likewise.
    assert sorted(served) == sorted(o.query_index for o in result.outcomes)
    assert sorted(dropped) == sorted(d.query_index for d in result.dropped)
    for span in trace.spans:
        assert span.completion_ms >= span.arrival_ms
        if span.status == "served":
            assert span.start_ms is not None
            assert span.arrival_ms <= span.start_ms <= span.completion_ms
            assert span.batch_size >= 1
        else:
            assert span.start_ms is None and span.drop_reason is not None

    payload = chrome_trace(trace)
    opens: dict[object, int] = {}
    closes: dict[object, int] = {}
    last_ts = 0.0
    for event in payload["traceEvents"]:
        if event["ph"] == "M":
            continue
        assert event["ts"] >= last_ts  # exported events are time-sorted
        last_ts = event["ts"]
        if event["ph"] == "b":
            opens[event["id"]] = opens.get(event["id"], 0) + 1
        elif event["ph"] == "e":
            closes[event["id"]] = closes.get(event["id"], 0) + 1
    assert opens == closes
    assert all(n == 1 for n in opens.values())
    assert len(opens) == len(trace.spans)


class TestObservationIdentity:
    @given(workload, disciplines, routers, admissions, st.integers(1, 3))
    @settings(max_examples=60, deadline=None)
    def test_reference_loop_unchanged_by_recording(
        self, wl, discipline, router, admission, num_replicas
    ):
        plain, observed = run_pair(
            wl, num_replicas=num_replicas, discipline=discipline,
            router=router, admission=admission,
        )
        assert_identical(observed, plain)
        assert plain.trace is None and observed.trace is not None
        assert_well_formed(observed)

    @given(workload, disciplines, routers, admissions, st.integers(1, 3))
    @settings(max_examples=60, deadline=None)
    def test_fast_path_unchanged_by_recording(
        self, wl, discipline, router, admission, num_replicas
    ):
        plain, observed = run_pair(
            wl, num_replicas=num_replicas, discipline=discipline,
            router=router, admission=admission, fast_path=True,
        )
        assert_identical(observed, plain)
        assert_well_formed(observed)

    @given(workload, disciplines, admissions, st.integers(1, 3))
    @settings(max_examples=40, deadline=None)
    def test_sharded_unchanged_by_recording(
        self, wl, discipline, admission, num_replicas
    ):
        plain, observed = run_pair(
            wl, num_replicas=num_replicas, discipline=discipline,
            router="round_robin", admission=admission, shard=True,
        )
        assert_identical(observed, plain)
        assert_well_formed(observed)
