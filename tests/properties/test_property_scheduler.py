"""Property-based tests on scheduler and latency-model invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.accelerator.analytic_model import SushiAccelModel
from repro.accelerator.persistent_buffer import CachedSubGraph
from repro.accelerator.platforms import ANALYTIC_DEFAULT
from repro.core.candidates import build_candidate_set
from repro.core.latency_table import LatencyTable
from repro.core.policies import Policy, select_subnet
from repro.core.running_average import RunningAverageNet
from repro.supernet.accuracy import AccuracyModel
from repro.supernet.zoo import load_supernet, paper_pareto_subnets

_SUPERNET = load_supernet("ofa_mobilenetv3")
_SUBNETS = paper_pareto_subnets(_SUPERNET)
_ACCEL = SushiAccelModel(ANALYTIC_DEFAULT, with_pb=True)
_CANDIDATES = build_candidate_set(_SUBNETS, capacity_bytes=_ACCEL.pb_capacity_bytes)
_ACCURACY = AccuracyModel(_SUPERNET)
_TABLE = LatencyTable.build(_SUBNETS, _CANDIDATES, _ACCEL.subnet_latency_ms, _ACCURACY.accuracy)

acc_bounds = st.floats(min_value=0.70, max_value=0.85)
lat_bounds = st.floats(min_value=0.05, max_value=5.0)
cache_idxs = st.integers(min_value=0, max_value=len(_CANDIDATES) - 1)


class TestPolicyProperties:
    @given(acc_bounds, lat_bounds, cache_idxs)
    @settings(max_examples=60, deadline=None)
    def test_selection_always_valid_index(self, acc, lat, cache_idx):
        for policy in (Policy.STRICT_ACCURACY, Policy.STRICT_LATENCY):
            idx = select_subnet(
                _TABLE, policy, accuracy_constraint=acc,
                latency_constraint_ms=lat, cache_state_idx=cache_idx,
            )
            assert 0 <= idx < _TABLE.num_subnets

    @given(acc_bounds, cache_idxs)
    @settings(max_examples=60, deadline=None)
    def test_strict_accuracy_feasibility(self, acc, cache_idx):
        idx = select_subnet(
            _TABLE, Policy.STRICT_ACCURACY, accuracy_constraint=acc,
            latency_constraint_ms=1.0, cache_state_idx=cache_idx,
        )
        feasible_exists = bool(np.any(_TABLE.accuracies >= acc))
        if feasible_exists:
            assert _TABLE.accuracy(idx) >= acc

    @given(lat_bounds, cache_idxs)
    @settings(max_examples=60, deadline=None)
    def test_strict_latency_feasibility(self, lat, cache_idx):
        idx = select_subnet(
            _TABLE, Policy.STRICT_LATENCY, accuracy_constraint=0.8,
            latency_constraint_ms=lat, cache_state_idx=cache_idx,
        )
        col = _TABLE.column(cache_idx)
        if bool(np.any(col <= lat)):
            assert col[idx] <= lat


class TestLatencyModelProperties:
    @given(st.integers(min_value=0, max_value=len(_SUBNETS) - 1), cache_idxs)
    @settings(max_examples=40, deadline=None)
    def test_caching_never_hurts_latency(self, subnet_idx, cache_idx):
        subnet = _SUBNETS[subnet_idx]
        cached = _CANDIDATES[cache_idx]
        assert _ACCEL.subnet_latency_ms(subnet, cached) <= _ACCEL.subnet_latency_ms(subnet) + 1e-9

    @given(st.integers(min_value=0, max_value=len(_SUBNETS) - 1))
    @settings(max_examples=20, deadline=None)
    def test_self_cache_is_best_possible(self, subnet_idx):
        subnet = _SUBNETS[subnet_idx]
        own = _ACCEL.subnet_latency_ms(subnet, CachedSubGraph.from_subnet(subnet))
        for cached in _CANDIDATES:
            assert own <= _ACCEL.subnet_latency_ms(subnet, cached) + 1e-9


class TestRunningAverageProperties:
    @given(st.lists(st.floats(min_value=0, max_value=1000), min_size=1, max_size=30),
           st.integers(min_value=1, max_value=10))
    @settings(max_examples=60)
    def test_average_within_observed_range(self, values, window):
        avg = RunningAverageNet(dimension=1, window=window)
        for v in values:
            avg.update(np.array([v]))
        recent = values[-window:]
        assert min(recent) - 1e-9 <= avg.value()[0] <= max(recent) + 1e-9
