"""Property-based tests on layer slices and SubGraph intersection invariants."""

import math

from hypothesis import given, settings, strategies as st

from repro.supernet.layers import ConvLayerSpec, LayerKind, LayerSlice

LAYER = ConvLayerSpec(
    name="prop.conv",
    kind=LayerKind.CONV,
    in_channels=128,
    out_channels=256,
    kernel_size=3,
    input_hw=28,
)

kernels = st.integers(min_value=0, max_value=LAYER.out_channels)
channels = st.integers(min_value=0, max_value=LAYER.in_channels)


def slice_of(k, c):
    return LayerSlice(layer=LAYER, kernels=k, channels=c)


class TestSliceProperties:
    @given(kernels, channels)
    def test_bytes_bounded_by_layer(self, k, c):
        assert 0 <= slice_of(k, c).weight_bytes <= LAYER.weight_bytes

    @given(kernels, channels, kernels, channels)
    def test_intersection_commutative(self, k1, c1, k2, c2):
        a, b = slice_of(k1, c1), slice_of(k2, c2)
        ab, ba = a.intersect(b), b.intersect(a)
        assert ab.kernels == ba.kernels and ab.channels == ba.channels

    @given(kernels, channels, kernels, channels)
    def test_intersection_bounded_by_operands(self, k1, c1, k2, c2):
        a, b = slice_of(k1, c1), slice_of(k2, c2)
        inter = a.intersect(b)
        assert inter.weight_bytes <= min(a.weight_bytes, b.weight_bytes)
        assert a.contains(inter) and b.contains(inter)

    @given(kernels, channels)
    def test_intersection_idempotent(self, k, c):
        a = slice_of(k, c)
        same = a.intersect(a)
        assert same.kernels == a.kernels and same.channels == a.channels

    @given(kernels, channels, kernels, channels, kernels, channels)
    def test_intersection_associative(self, k1, c1, k2, c2, k3, c3):
        a, b, c = slice_of(k1, c1), slice_of(k2, c2), slice_of(k3, c3)
        left = a.intersect(b).intersect(c)
        right = a.intersect(b.intersect(c))
        assert left.kernels == right.kernels and left.channels == right.channels

    @given(kernels, channels, kernels, channels)
    def test_bytes_monotone_in_slice(self, k1, c1, k2, c2):
        small = slice_of(min(k1, k2), min(c1, c2))
        big = slice_of(max(k1, k2), max(c1, c2))
        assert small.weight_bytes <= big.weight_bytes


class TestLayerArithmetic:
    @given(
        st.integers(min_value=1, max_value=512),
        st.integers(min_value=1, max_value=512),
        st.sampled_from([1, 3, 5, 7]),
        st.sampled_from([7, 14, 28, 56]),
        st.sampled_from([1, 2]),
    )
    @settings(max_examples=60)
    def test_macs_and_bytes_consistent(self, in_ch, out_ch, k, hw, stride):
        layer = ConvLayerSpec(
            name="gen", kind=LayerKind.CONV, in_channels=in_ch, out_channels=out_ch,
            kernel_size=k, input_hw=hw, stride=stride,
        )
        assert layer.flops == 2 * layer.macs
        assert layer.weight_bytes == math.ceil(layer.weight_count * layer.weight_bits / 8)
        assert layer.output_hw == max(1, math.ceil(hw / stride))
        # Arithmetic intensity with full caching never decreases.
        assert layer.arithmetic_intensity(cached_weight_bytes=layer.weight_bytes) >= layer.arithmetic_intensity()
