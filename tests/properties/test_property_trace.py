"""Property-based tests of trace replay: log I/O, spec identity, the fitter.

Three families of properties:

* **Lossless log round-trips** — for *every* hypothesis-generated request
  log (timestamps plus optional SLO / accuracy-floor columns), writing to
  CSV or JSONL and reading it back reproduces the exact IEEE doubles —
  ``repr``/``json.dumps`` round-trip floats losslessly, so equality here
  is bit-equality, not approximate.

* **Replay identity** — a ``kind="trace"`` arrival spec whose inline
  events are the timestamps a deterministic spec would generate produces
  **record-identical** simulation results on both the reference event
  loop and the array fast path.  Replay is a pure arrival source, never a
  behavioral fork.

* **Fitter recovery** — on an evenly spaced log the piecewise-Poisson
  fitter recovers the exact nominal rate, near-zero interarrival CV, and
  a synthetic ``ArrivalSpec`` recipe that parses and round-trips.
"""

from __future__ import annotations

import json
import math
from pathlib import Path

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.serving import (
    ArrivalSpec,
    ReplicaGroupSpec,
    ScenarioSpec,
    SushiStack,
    SushiStackConfig,
    TraceLog,
    WorkloadSpec,
    fit_piecewise_poisson,
)
from repro.serving.api import run_scenario
from repro.serving.trace_io import (
    TraceFit,
    read_csv_log,
    read_jsonl_log,
    write_csv_log,
    write_jsonl_log,
)

SUPERNET = "ofa_mobilenetv3"

# One template stack shared by every hypothesis example: run_scenario only
# clones cached stacks, so the expensive latency table is built once.
_STACK_CACHE: dict[SushiStackConfig, SushiStack] = {}

finite_ts = st.floats(
    min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False
)
slo_values = st.floats(
    min_value=1e-3, max_value=1e4, allow_nan=False, allow_infinity=False
)
accuracy_values = st.floats(
    min_value=0.001, max_value=0.999, allow_nan=False, allow_infinity=False
)


@st.composite
def trace_logs(draw):
    n = draw(st.integers(min_value=1, max_value=40))
    timestamps = draw(st.lists(finite_ts, min_size=n, max_size=n))
    with_columns = draw(st.booleans())
    slo = acc = None
    if with_columns:
        slo = draw(st.lists(slo_values, min_size=n, max_size=n))
        acc = draw(st.lists(accuracy_values, min_size=n, max_size=n))
    return TraceLog(
        timestamps_ms=np.asarray(timestamps, dtype=np.float64),
        slo_ms=None if slo is None else np.asarray(slo, dtype=np.float64),
        accuracy_floor=None if acc is None else np.asarray(acc, dtype=np.float64),
    )


class TestLogRoundTrip:
    @given(log=trace_logs())
    @settings(max_examples=80, deadline=None)
    def test_csv_round_trip_is_lossless(self, log, tmp_path_factory):
        path = tmp_path_factory.mktemp("csv") / "log.csv"
        write_csv_log(path, log)
        assert read_csv_log(path) == log

    @given(log=trace_logs())
    @settings(max_examples=80, deadline=None)
    def test_jsonl_round_trip_is_lossless(self, log, tmp_path_factory):
        path = tmp_path_factory.mktemp("jsonl") / "log.jsonl"
        write_jsonl_log(path, log)
        assert read_jsonl_log(path) == log

    @given(log=trace_logs())
    @settings(max_examples=40, deadline=None)
    def test_csv_and_jsonl_agree(self, log, tmp_path_factory):
        root = tmp_path_factory.mktemp("both")
        write_csv_log(root / "log.csv", log)
        write_jsonl_log(root / "log.jsonl", log)
        assert read_csv_log(root / "log.csv") == read_jsonl_log(root / "log.jsonl")


nondecreasing_events = st.lists(
    st.floats(min_value=0.0, max_value=1e5, allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=30,
).map(lambda xs: tuple(sorted(xs)))


class TestTraceSpecRoundTrip:
    @given(
        nondecreasing_events,
        st.floats(min_value=0.1, max_value=10.0, allow_nan=False),
        st.floats(min_value=0.1, max_value=10.0, allow_nan=False),
        st.one_of(st.none(), st.integers(min_value=1, max_value=50)),
    )
    @settings(max_examples=80, deadline=None)
    def test_inline_trace_spec_round_trips_exactly(
        self, events, rate_scale, time_scale, limit
    ):
        spec = ArrivalSpec(
            kind="trace",
            events=events,
            rate_scale=rate_scale,
            time_scale=time_scale,
            limit=limit,
        )
        assert ArrivalSpec.from_dict(spec.to_dict()) == spec
        assert ArrivalSpec.from_dict(json.loads(json.dumps(spec.to_dict()))) == spec

    def test_path_trace_spec_round_trips_exactly(self):
        spec = ArrivalSpec(
            kind="trace", path="examples/traces/replay_sample.csv", limit=10
        )
        assert ArrivalSpec.from_dict(spec.to_dict()) == spec


def _scenario(arrivals: ArrivalSpec, *, n: int, fast_path: bool) -> ScenarioSpec:
    return ScenarioSpec(
        name="trace-identity",
        supernet_name=SUPERNET,
        policy="strict_latency",
        replica_groups=(ReplicaGroupSpec(count=2, discipline="fifo"),),
        router="round_robin",
        admission="drop_expired",
        workload=WorkloadSpec(
            num_queries=n, accuracy_range=None, latency_range_ms=None
        ),
        arrivals=arrivals,
        fast_path=fast_path,
        seed=3,
    )


def _assert_identical(a, b):
    assert a.outcomes == b.outcomes
    assert a.dropped == b.dropped
    assert a.replica_stats == b.replica_stats
    assert a.duration_ms == b.duration_ms


class TestReplayIdentity:
    @given(
        st.floats(min_value=0.2, max_value=5.0, allow_nan=False),
        st.integers(min_value=2, max_value=10),
        st.booleans(),
    )
    @settings(max_examples=12, deadline=None)
    def test_trace_kind_matches_deterministic_spec(self, rate, n, fast_path):
        det = ArrivalSpec(kind="deterministic", rate_per_ms=rate)
        events = tuple(float(t) for t in det.generate(n))
        trace = ArrivalSpec(kind="trace", events=events)
        assert np.array_equal(trace.generate(n), det.generate(n))

        ref = run_scenario(
            _scenario(det, n=n, fast_path=fast_path), stack_cache=_STACK_CACHE
        )
        replayed = run_scenario(
            _scenario(trace, n=n, fast_path=fast_path), stack_cache=_STACK_CACHE
        )
        _assert_identical(replayed, ref)

    def test_reference_and_fast_path_agree_on_trace_kind(self):
        trace = ArrivalSpec(kind="trace", events=(0.4, 0.9, 1.7, 2.0, 3.5, 6.0))
        ref = run_scenario(
            _scenario(trace, n=6, fast_path=False), stack_cache=_STACK_CACHE
        )
        fast = run_scenario(
            _scenario(trace, n=6, fast_path=True), stack_cache=_STACK_CACHE
        )
        _assert_identical(fast, ref)


class TestFitterRecovery:
    @given(
        st.floats(min_value=0.05, max_value=20.0, allow_nan=False),
        st.integers(min_value=10, max_value=200),
    )
    @settings(max_examples=60, deadline=None)
    def test_constant_rate_recovered_exactly(self, rate, n):
        timestamps = np.arange(1, n + 1, dtype=np.float64) / rate
        fit = fit_piecewise_poisson(timestamps)
        assert math.isclose(fit.nominal_rate_per_ms, rate, rel_tol=1e-9)
        assert fit.cv_interarrival < 1e-6
        assert fit.num_burst_windows == 0

        spec = fit.arrival_spec(seed=5)
        assert spec.kind == "time_varying"
        assert ArrivalSpec.from_dict(spec.to_dict()) == spec
        assert TraceFit.from_dict(fit.to_dict()) == fit

    def test_fit_of_committed_sample_log(self):
        sample = (
            Path(__file__).resolve().parents[2]
            / "examples"
            / "traces"
            / "replay_sample.csv"
        )
        log = read_csv_log(sample)
        fit = fit_piecewise_poisson(log.timestamps_ms)
        assert fit.num_events == len(log)
        assert fit.nominal_rate_per_ms > 0
        assert len(fit.segments) >= 1
