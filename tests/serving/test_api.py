"""Tests for the scenario-building facade (`repro.serving.api`).

The load-bearing guarantee: a homogeneous Poisson :class:`ScenarioSpec` run
through ``run_scenario`` is **record-identical** to PR 1's hand-wired path
(``build_stack_engine`` + ``run_open_loop`` over an explicitly generated
workload) — the spec layer adds expressiveness, never drift.
"""

from __future__ import annotations

import pytest

from repro.core.policies import Policy
from repro.serving import (
    ArrivalSpec,
    ReplicaGroupSpec,
    ScenarioSpec,
    SushiStack,
    SushiStackConfig,
    WorkloadSpec,
    build_stack_engine,
)
from repro.serving.api import (
    build_engine,
    build_trace,
    format_result_summary,
    run_scenario,
)
from repro.serving.workload import WorkloadGenerator, feasible_ranges_from_table

SUPERNET = "ofa_mobilenetv3"


@pytest.fixture(scope="module")
def stack():
    return SushiStack(
        SushiStackConfig(
            supernet_name=SUPERNET, policy=Policy.STRICT_LATENCY, seed=0
        )
    )


@pytest.fixture(scope="module")
def stack_cache(stack):
    return {stack.config: stack}


def poisson_spec(num_replicas: int = 2, *, rate: float = 1.0, n: int = 60) -> ScenarioSpec:
    return ScenarioSpec(
        name="api-test",
        supernet_name=SUPERNET,
        policy=Policy.STRICT_LATENCY,
        replica_groups=(ReplicaGroupSpec(count=num_replicas, discipline="edf"),),
        router="jsq",
        admission="drop_expired",
        workload=WorkloadSpec(num_queries=n, accuracy_range=None, latency_range_ms=None),
        arrivals=ArrivalSpec(kind="poisson", rate_per_ms=rate, seed=0),
        seed=0,
    )


class TestEquivalenceWithHandWiredPath:
    """run_scenario == build_stack_engine + run_open_loop, record for record."""

    def hand_wired(self, stack, *, num_replicas, rate, n):
        acc_range, lat_range = feasible_ranges_from_table(stack.table)
        trace = WorkloadGenerator(
            WorkloadSpec(
                num_queries=n, accuracy_range=acc_range, latency_range_ms=lat_range
            ),
            seed=0,
        ).generate()
        engine = build_stack_engine(
            stack,
            num_replicas=num_replicas,
            discipline="edf",
            router="jsq",
            admission="drop_expired",
        )
        return engine.run_open_loop(trace, arrival_rate_per_ms=rate, seed=0)

    @pytest.mark.parametrize("num_replicas", [1, 2])
    def test_records_identical(self, stack, stack_cache, num_replicas):
        hand = self.hand_wired(stack, num_replicas=num_replicas, rate=1.0, n=60)
        facade = run_scenario(
            poisson_spec(num_replicas, rate=1.0, n=60), stack_cache=stack_cache
        )
        assert facade.records == hand.records
        assert facade.offered_load == hand.offered_load
        assert facade.dropped == hand.dropped
        assert [o.replica_index for o in facade.outcomes] == [
            o.replica_index for o in hand.outcomes
        ]
        assert [o.arrival_ms for o in facade.outcomes] == [
            o.arrival_ms for o in hand.outcomes
        ]

    def test_records_identical_without_cache(self, stack):
        """The facade rebuilds the stack from config and still matches."""
        hand = self.hand_wired(stack, num_replicas=2, rate=1.0, n=40)
        facade = run_scenario(poisson_spec(2, rate=1.0, n=40))
        assert facade.records == hand.records

    def test_load_sweep_matches_hand_wired_engine(self, stack, stack_cache):
        """The facade-migrated load_sweep reproduces the PR 1 engine loop."""
        from repro.experiments import load_sweep

        result = load_sweep.run(
            stack=stack,
            num_queries=40,
            arrival_rates_per_ms=(1.0,),
            replica_counts=(2,),
            seed=0,
        )
        hand = self.hand_wired(stack, num_replicas=2, rate=1.0, n=40)
        cell = result.cell(2, 1.0)
        assert cell.offered_load == hand.offered_load
        assert cell.slo_attainment == hand.slo_attainment
        assert cell.drop_rate == hand.drop_rate
        assert cell.mean_response_ms == hand.mean_response_ms
        assert cell.p99_response_ms == hand.p99_response_ms
        assert cell.achieved_throughput_per_ms == hand.achieved_throughput_per_ms
        assert cell.mean_accuracy == hand.mean_accuracy

    def test_cached_stack_never_mutated(self, stack, stack_cache):
        before_pb = stack.pb.cached
        before_window = stack.scheduler.cache_state_idx
        run_scenario(poisson_spec(2, n=40), stack_cache=stack_cache)
        assert stack.pb.cached is before_pb
        assert stack.scheduler.cache_state_idx == before_window


class TestHeterogeneousPools:
    def hetero_spec(self, **arrival_kwargs) -> ScenarioSpec:
        arrivals = arrival_kwargs or dict(kind="poisson", rate_per_ms=2.0, seed=0)
        return ScenarioSpec(
            name="hetero",
            supernet_name=SUPERNET,
            policy=Policy.STRICT_LATENCY,
            replica_groups=(
                ReplicaGroupSpec(count=2, pb_kb=1728.0, discipline="edf", name="large"),
                ReplicaGroupSpec(count=2, pb_kb=432.0, discipline="edf", name="small"),
            ),
            router="jsq",
            admission="drop_expired",
            workload=WorkloadSpec(
                num_queries=80, accuracy_range=None, latency_range_ms=None
            ),
            arrivals=ArrivalSpec(**arrivals),
            seed=0,
        )

    def test_mixed_pb_sizes_build_distinct_backends(self, stack_cache):
        spec = self.hetero_spec()
        engine = build_engine(spec, stack_cache=stack_cache)
        assert engine.num_replicas == 4
        assert [r.name for r in engine.replicas] == [
            "large-0", "large-1", "small-0", "small-1",
        ]
        assert [r.index for r in engine.replicas] == [0, 1, 2, 3]
        caps = [r.server.pb.capacity_bytes for r in engine.replicas]
        assert caps[0] == caps[1] > caps[2] == caps[3]
        # Latency tables are shared within a group but differ across groups.
        assert engine.replicas[0].server.table is engine.replicas[1].server.table
        assert engine.replicas[0].server.table is not engine.replicas[2].server.table

    def test_same_config_groups_get_decorrelated_clones(self, stack_cache):
        """Splitting one pool into labeled groups must not twin the replicas."""
        spec = ScenarioSpec(
            supernet_name=SUPERNET,
            policy=Policy.STRICT_LATENCY,
            replica_groups=(
                ReplicaGroupSpec(count=1, name="a"),
                ReplicaGroupSpec(count=1, name="b"),
            ),
            arrivals=ArrivalSpec(kind="poisson", rate_per_ms=0.5),
            seed=0,
        )
        engine = build_engine(spec, stack_cache=stack_cache)
        seeds = [r.server.config.seed for r in engine.replicas]
        assert seeds == [0, 1]

    def test_hetero_pool_serves_on_both_tiers(self, stack_cache):
        result = run_scenario(self.hetero_spec(), stack_cache=stack_cache)
        by_name = {s.name: s for s in result.replica_stats}
        assert result.num_offered == 80
        assert by_name["large-0"].num_served > 0
        assert by_name["small-0"].num_served > 0

    def test_fastest_expected_routing_on_hetero_pool(self, stack_cache):
        """The latency-table-aware router serves the whole stream and keeps
        per-replica estimates distinct across PB tiers."""
        spec = self.hetero_spec()
        spec = ScenarioSpec.from_dict({**spec.to_dict(), "router": "fastest_expected"})
        result = run_scenario(spec, stack_cache=stack_cache)
        assert result.num_offered == 80
        assert result.num_served > 0
        served_by = {o.replica_index for o in result.outcomes}
        assert len(served_by) > 1

    def test_time_varying_arrivals_run_end_to_end(self, stack_cache):
        result = run_scenario(
            self.hetero_spec(
                kind="time_varying", segments=((30.0, 1.0), (20.0, 6.0)), seed=0
            ),
            stack_cache=stack_cache,
        )
        assert result.num_offered == 80
        assert result.num_served > 0


class TestBackendKinds:
    def spec_for(self, kind: str, **group_kwargs) -> ScenarioSpec:
        return ScenarioSpec(
            name=f"kind-{kind}",
            supernet_name=SUPERNET,
            policy=Policy.STRICT_LATENCY,
            replica_groups=(ReplicaGroupSpec(count=2, kind=kind, **group_kwargs),),
            router="round_robin",
            workload=WorkloadSpec(
                num_queries=24, accuracy_range=None, latency_range_ms=None
            ),
            arrivals=ArrivalSpec(kind="poisson", rate_per_ms=0.5, seed=0),
            seed=0,
        )

    def test_no_sushi_backend(self, stack_cache):
        result = run_scenario(self.spec_for("no_sushi"), stack_cache=stack_cache)
        assert result.num_served == 24
        assert all(r.cache_hit_ratio == 0.0 for r in result.records)

    def test_state_unaware_backend(self, stack_cache):
        result = run_scenario(self.spec_for("state_unaware"), stack_cache=stack_cache)
        assert result.num_served == 24

    def test_static_subnet_backend_pins_one_subnet(self, stack_cache):
        result = run_scenario(
            self.spec_for("static_subnet", subnet_name="C"), stack_cache=stack_cache
        )
        assert {r.subnet_name for r in result.records} == {"C"}

    def test_static_subnet_defaults_to_most_accurate(self, stack_cache):
        result = run_scenario(self.spec_for("static_subnet"), stack_cache=stack_cache)
        served = {r.subnet_name for r in result.records}
        assert len(served) == 1

    def test_precomputed_backend_replays_closed_loop_records(self, stack, stack_cache):
        spec = self.spec_for("precomputed")
        result = run_scenario(spec, stack_cache=stack_cache)
        trace = build_trace(spec, stack_cache=stack_cache)
        expected = stack.clone(seed=stack.config.seed).serve(trace)
        assert result.num_served == 24
        # Service times and accuracies replay the precomputed records even
        # though queueing shifts dispatch times.
        by_index = {o.query_index: o for o in result.outcomes}
        for rec in expected:
            assert by_index[rec.query_index].service_ms == rec.served_latency_ms
            assert by_index[rec.query_index].served_accuracy == rec.served_accuracy

    def test_precomputed_requires_trace_at_build_time(self, stack_cache):
        with pytest.raises(ValueError, match="trace"):
            build_engine(self.spec_for("precomputed"), stack_cache=stack_cache)


class TestEngineIndexAssignment:
    def test_engine_assigns_replica_indices(self):
        from repro.serving.engine import AcceleratorReplica, ServingEngine

        class ConstantServer:
            def serve_query(self, query, *, effective_latency_constraint_ms=None):
                from repro.core.metrics import QueryRecord

                return QueryRecord(
                    query_index=query.index,
                    accuracy_constraint=query.accuracy_constraint,
                    latency_constraint_ms=query.latency_constraint_ms,
                    subnet_name="S",
                    served_accuracy=0.7,
                    served_latency_ms=1.0,
                    cache_hit_ratio=0.0,
                    offchip_energy_mj=0.0,
                )

        replicas = [AcceleratorReplica(ConstantServer()) for _ in range(3)]
        assert all(r.index is None for r in replicas)
        engine = ServingEngine(replicas)
        assert [r.index for r in engine.replicas] == [0, 1, 2]
        assert [r.name for r in engine.replicas] == ["replica0", "replica1", "replica2"]
        assert [r.stats.replica_index for r in engine.replicas] == [0, 1, 2]

    def test_explicit_matching_indices_still_accepted(self):
        from repro.serving.engine import AcceleratorReplica, ServingEngine

        class Dummy:
            def serve_query(self, query, *, effective_latency_constraint_ms=None):
                raise NotImplementedError

        replicas = [AcceleratorReplica(Dummy(), index=i) for i in range(2)]
        engine = ServingEngine(replicas)
        assert [r.index for r in engine.replicas] == [0, 1]

    def test_explicit_mismatch_still_rejected(self):
        from repro.serving.engine import AcceleratorReplica, ServingEngine

        class Dummy:
            def serve_query(self, query, *, effective_latency_constraint_ms=None):
                raise NotImplementedError

        with pytest.raises(ValueError, match="explicitly"):
            ServingEngine([AcceleratorReplica(Dummy(), index=3)])

    def test_assigned_name_respects_explicit_name(self):
        from repro.serving.engine import AcceleratorReplica, ServingEngine

        class Dummy:
            def serve_query(self, query, *, effective_latency_constraint_ms=None):
                raise NotImplementedError

        replica = AcceleratorReplica(Dummy(), name="edge-tier")
        ServingEngine([replica])
        assert replica.index == 0
        assert replica.name == "edge-tier"
        assert replica.stats.name == "edge-tier"


class TestSummary:
    def test_format_result_summary_mentions_replicas(self, stack_cache):
        spec = poisson_spec(2, n=30)
        result = run_scenario(spec, stack_cache=stack_cache)
        text = format_result_summary(spec, result)
        assert "SLO attainment" in text
        assert "replica0" in text and "replica1" in text
