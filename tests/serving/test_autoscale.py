"""Tests for the autoscaling control plane.

Three layers under test: the telemetry bus (sliding-window metrics), the
scaling policies and controller (decisions, clamps, cooldowns), and the
engine's replica lifecycle (scale-up cloning, drain-then-retire, active-time
cost accounting) — plus the declarative ``AutoscalerSpec`` path and the
headline acceptance property: over a bursty trace the reactive autoscaler
beats the static pool of equal mean cost while costing less than the pool
sized for the peak.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.metrics import QueryRecord
from repro.core.policies import Policy
from repro.serving import (
    ArrivalSpec,
    AutoscaleController,
    AutoscalerSpec,
    ReplicaGroupSpec,
    ScenarioSpec,
    SushiStack,
    SushiStackConfig,
    TelemetryBus,
    WorkloadSpec,
    run_scenario,
)
from repro.serving.autoscale import (
    MetricsSnapshot,
    ReactivePolicy,
    SchedulePolicy,
    TargetUtilizationPolicy,
    make_policy,
)
from repro.serving.engine import AcceleratorReplica, ServingEngine
from repro.serving.query import Query, QueryTrace

SUPERNET = "ofa_mobilenetv3"


class ConstantServer:
    """Synthetic backend with a fixed service time."""

    def __init__(self, service_ms: float = 10.0, accuracy: float = 0.78) -> None:
        self.service_ms = service_ms
        self.accuracy = accuracy

    def serve_query(self, query, *, effective_latency_constraint_ms=None):
        return QueryRecord(
            query_index=query.index,
            accuracy_constraint=query.accuracy_constraint,
            latency_constraint_ms=query.latency_constraint_ms,
            subnet_name="synthetic",
            served_accuracy=self.accuracy,
            served_latency_ms=self.service_ms,
        )


def make_trace(n, *, latency_ms=30.0):
    return QueryTrace.from_constraints([0.77] * n, [latency_ms] * n)


def snapshot(**overrides) -> MetricsSnapshot:
    base = dict(
        time_ms=100.0,
        window_ms=50.0,
        num_active=2,
        num_draining=0,
        queue_depth=0,
        arrival_rate_per_ms=0.1,
        drop_rate=0.0,
        utilization=0.5,
        p95_wait_ms=0.0,
        mean_service_ms=10.0,
    )
    base.update(overrides)
    return MetricsSnapshot(**base)


# --------------------------------------------------------------- telemetry
class TestTelemetryBus:
    def test_windowed_rates_and_pruning(self):
        bus = TelemetryBus(window_ms=100.0)
        for t in (10.0, 20.0, 150.0, 160.0):
            bus.on_arrival(t)
        bus.on_drop(155.0)
        snap = bus.snapshot(200.0, num_active=1)
        # Only the arrivals inside [100, 200] remain.
        assert snap.arrival_rate_per_ms == pytest.approx(2 / 100.0)
        assert snap.drop_rate == 1.0  # one drop, no dispatches in window
        assert bus.total_arrivals == 4

    def test_utilization_counts_open_and_closed_intervals(self):
        bus = TelemetryBus(window_ms=100.0)
        bus.on_dispatch(100.0, replica_index=0, wait_ms=0.0)
        bus.on_completion(140.0, replica_index=0, service_ms=40.0)
        bus.on_dispatch(180.0, replica_index=1, wait_ms=5.0)  # still open
        snap = bus.snapshot(200.0, num_active=1)
        # 40 ms closed + 20 ms open over a 100 ms window.
        assert snap.utilization == pytest.approx(0.6)
        two = bus.snapshot(200.0, num_active=2)
        assert two.utilization == pytest.approx(0.3)

    def test_window_clipped_to_elapsed_time(self):
        bus = TelemetryBus(window_ms=1000.0)
        bus.on_arrival(5.0)
        snap = bus.snapshot(10.0, num_active=1)
        assert snap.window_ms == 10.0
        assert snap.arrival_rate_per_ms == pytest.approx(0.1)

    def test_p95_wait_and_drop_rate(self):
        bus = TelemetryBus(window_ms=100.0)
        for i, wait in enumerate([1.0, 2.0, 3.0, 4.0]):
            bus.on_dispatch(50.0 + i, replica_index=i, wait_ms=wait)
        bus.on_drop(60.0)
        snap = bus.snapshot(100.0, num_active=4)
        assert snap.p95_wait_ms == pytest.approx(np.percentile([1, 2, 3, 4], 95))
        assert snap.drop_rate == pytest.approx(1 / 5)

    def test_reset_forgets_everything(self):
        bus = TelemetryBus(window_ms=10.0)
        bus.on_arrival(1.0)
        bus.on_drop(2.0)
        bus.reset()
        snap = bus.snapshot(5.0, num_active=1)
        assert snap.arrival_rate_per_ms == 0.0
        assert snap.drop_rate == 0.0
        assert bus.total_arrivals == 0

    def test_invalid_window_rejected(self):
        with pytest.raises(ValueError):
            TelemetryBus(window_ms=0.0)


# ---------------------------------------------------------------- policies
class TestPolicies:
    def test_reactive_scales_up_on_drops(self):
        policy = ReactivePolicy(max_drop_rate=0.05)
        desired, reason = policy.desired_replicas(snapshot(drop_rate=0.2))
        assert desired == 3
        assert "drop_rate" in reason

    def test_reactive_scales_up_on_queue_depth(self):
        policy = ReactivePolicy(max_queue_per_replica=4.0)
        desired, _ = policy.desired_replicas(snapshot(queue_depth=9))
        assert desired == 3

    def test_reactive_scales_down_when_idle(self):
        policy = ReactivePolicy(min_utilization=0.4)
        desired, reason = policy.desired_replicas(
            snapshot(utilization=0.1, queue_depth=1)
        )
        assert desired == 1
        assert "utilization" in reason

    def test_reactive_holds_steady(self):
        policy = ReactivePolicy()
        desired, reason = policy.desired_replicas(snapshot(utilization=0.6))
        assert desired == 2
        assert reason == "steady"

    def test_reactive_no_scale_down_with_queue(self):
        policy = ReactivePolicy(min_utilization=0.4)
        desired, _ = policy.desired_replicas(
            snapshot(utilization=0.1, queue_depth=5)
        )
        assert desired == 2

    def test_target_utilization_proportional(self):
        policy = TargetUtilizationPolicy(target_utilization=0.5, deadband=0.1)
        desired, _ = policy.desired_replicas(
            snapshot(num_active=4, utilization=1.0)
        )
        assert desired == 8
        desired, _ = policy.desired_replicas(
            snapshot(num_active=4, utilization=0.1)
        )
        assert desired == 1

    def test_target_utilization_counts_draining_capacity(self):
        # Utilization is normalized over active + draining (they still
        # serve), so demand must be un-normalized by the same count: 0.8
        # utilization over 4+2 replicas is 4.8 busy-equivalents -> 8 at
        # target 0.6, not the 6 an active-only demand would give.
        policy = TargetUtilizationPolicy(target_utilization=0.6, deadband=0.1)
        desired, _ = policy.desired_replicas(
            snapshot(num_active=4, num_draining=2, utilization=0.8)
        )
        assert desired == 8

    def test_target_utilization_deadband_holds(self):
        policy = TargetUtilizationPolicy(target_utilization=0.5, deadband=0.15)
        desired, _ = policy.desired_replicas(
            snapshot(num_active=4, utilization=0.6)
        )
        assert desired == 4

    def test_schedule_plan_and_cycle(self):
        policy = SchedulePolicy([(0.0, 1), (100.0, 3), (200.0, 2)], period_ms=300.0)
        assert policy.desired_replicas(snapshot(time_ms=50.0))[0] == 1
        assert policy.desired_replicas(snapshot(time_ms=150.0))[0] == 3
        assert policy.desired_replicas(snapshot(time_ms=250.0))[0] == 2
        # One full period later the plan repeats.
        assert policy.desired_replicas(snapshot(time_ms=350.0))[0] == 1

    def test_schedule_before_first_entry(self):
        non_cyclic = SchedulePolicy([(100.0, 3)])
        assert non_cyclic.desired_replicas(snapshot(time_ms=10.0))[0] == 3
        cyclic = SchedulePolicy([(100.0, 3), (200.0, 1)], period_ms=300.0)
        # Inside a cycle but before its first entry: previous cycle's tail.
        assert cyclic.desired_replicas(snapshot(time_ms=50.0))[0] == 1

    @pytest.mark.parametrize(
        "factory",
        [
            lambda: ReactivePolicy(max_drop_rate=1.5),
            lambda: ReactivePolicy(max_queue_per_replica=0.0),
            lambda: ReactivePolicy(scale_up_step=0),
            lambda: TargetUtilizationPolicy(target_utilization=0.0),
            lambda: TargetUtilizationPolicy(deadband=1.0),
            lambda: SchedulePolicy([]),
            lambda: SchedulePolicy([(0.0, 0)]),
            lambda: SchedulePolicy([(10.0, 1), (0.0, 2)]),
            lambda: SchedulePolicy([(10.0, 1)], period_ms=5.0),
        ],
    )
    def test_invalid_policies_rejected(self, factory):
        with pytest.raises(ValueError):
            factory()

    def test_make_policy(self):
        assert make_policy("reactive").name == "reactive"
        assert make_policy(ReactivePolicy()).name == "reactive"
        with pytest.raises(ValueError, match="unknown scaling policy"):
            make_policy("warp")


# -------------------------------------------------------------- controller
class TestController:
    def make(self, **kwargs):
        defaults = dict(
            control_interval_ms=10.0,
            min_replicas=1,
            max_replicas=4,
            replica_factory=lambda pos: AcceleratorReplica(ConstantServer()),
        )
        defaults.update(kwargs)
        return AutoscaleController("reactive", **defaults)

    def test_clamps_to_bounds(self):
        ctl = self.make(max_replicas=3)
        desired = ctl.decide(snapshot(num_active=3, drop_rate=1.0))
        assert desired == 3  # clamped at max
        ctl2 = self.make(min_replicas=2)
        desired = ctl2.decide(snapshot(num_active=2, utilization=0.0))
        assert desired == 2  # clamped at min

    def test_cooldown_holds_scaling(self):
        ctl = self.make(up_cooldown_ms=100.0)
        assert ctl.decide(snapshot(time_ms=10.0, drop_rate=1.0)) == 3
        # Second up-decision inside the cooldown is held.
        assert ctl.decide(snapshot(time_ms=50.0, num_active=3, drop_rate=1.0)) == 3
        report = ctl.report(final_replicas=3)
        assert [e.action for e in report.events] == ["scale_up", "held"]

    def test_report_counts(self):
        ctl = self.make()
        ctl.decide(snapshot(drop_rate=1.0))
        ctl.decide(snapshot(num_active=3, utilization=0.0, queue_depth=0))
        report = ctl.report(final_replicas=2)
        assert report.num_controls == 2
        assert report.num_scale_ups == 1
        assert report.num_scale_downs == 1
        assert report.peak_replicas == 3
        assert report.policy == "reactive"

    def test_reset_clears_history(self):
        ctl = self.make()
        ctl.decide(snapshot(drop_rate=1.0))
        ctl.reset()
        assert ctl.report(final_replicas=1).num_controls == 0

    def test_invalid_configs_rejected(self):
        with pytest.raises(ValueError):
            self.make(control_interval_ms=0.0)
        with pytest.raises(ValueError):
            self.make(min_replicas=0)
        with pytest.raises(ValueError):
            self.make(min_replicas=3, max_replicas=2)
        with pytest.raises(ValueError):
            self.make(up_cooldown_ms=-1.0)


# ------------------------------------------------------- engine lifecycle
def bursty_arrivals(n, *, quiet_ms=300.0, quiet_rate=0.02, burst_ms=150.0,
                    burst_rate=0.5, seed=0):
    """Quiet/burst square-wave Poisson arrivals (synthetic-server scale)."""
    rng = np.random.default_rng(seed)
    times, t = [], 0.0
    period = quiet_ms + burst_ms
    while len(times) < n:
        rate = quiet_rate if (t % period) < quiet_ms else burst_rate
        t += rng.exponential(1.0 / rate)
        times.append(t)
    return np.asarray(times[:n])


def autoscaled_engine(**ctl_kwargs):
    defaults = dict(
        control_interval_ms=25.0,
        min_replicas=1,
        max_replicas=6,
        replica_factory=lambda pos: AcceleratorReplica(
            ConstantServer(), discipline="edf"
        ),
    )
    defaults.update(ctl_kwargs)
    ctl = AutoscaleController("reactive", **defaults)
    return ServingEngine(
        [AcceleratorReplica(ConstantServer(), discipline="edf")],
        router="jsq",
        admission="drop_expired",
        autoscaler=ctl,
    )


class TestEngineLifecycle:
    def test_pool_grows_and_shrinks(self):
        engine = autoscaled_engine()
        trace = make_trace(400)
        result = engine.run(trace, bursty_arrivals(400))
        assert result.autoscale is not None
        assert result.autoscale.num_scale_ups > 0
        assert result.autoscale.num_scale_downs > 0
        assert result.autoscale.peak_replicas > 1
        assert len(result.replica_stats) > 1
        # Every offered query is accounted for.
        assert result.num_offered == 400

    def test_scaled_up_replicas_serve(self):
        engine = autoscaled_engine()
        trace = make_trace(400)
        result = engine.run(trace, bursty_arrivals(400))
        served_by = {o.replica_index for o in result.outcomes}
        assert len(served_by) > 1

    def test_retired_replicas_accrue_bounded_cost(self):
        engine = autoscaled_engine()
        trace = make_trace(400)
        result = engine.run(trace, bursty_arrivals(400))
        retired = [r for r in engine.replicas if r.is_retired]
        assert retired, "the bursty trace should retire some replicas"
        for replica in retired:
            assert replica.stats.active_ms == pytest.approx(
                replica.retired_at_ms - replica.activated_ms
            )
        # Elastic cost sits strictly between 1x and peak x duration.
        assert (
            result.duration_ms
            < result.total_replica_active_ms
            < result.autoscale.peak_replicas * result.duration_ms
        )

    def test_draining_replica_finishes_queue_before_retiring(self):
        # Force a scale-down while replica queues still hold work: every
        # query routed anywhere must still complete or be dropped.
        engine = autoscaled_engine(
            control_interval_ms=5.0, max_replicas=4
        )
        trace = make_trace(200, latency_ms=1e9)  # nothing ever expires
        result = engine.run(trace, bursty_arrivals(200))
        assert result.num_served == 200
        assert result.num_dropped == 0

    def test_repeat_run_is_identical(self):
        engine = autoscaled_engine()
        trace = make_trace(300)
        arrivals = bursty_arrivals(300)
        first = engine.run(trace, arrivals)
        second = engine.run(trace, arrivals)
        assert first.records == second.records
        assert first.dropped == second.dropped
        assert first.replica_seconds == second.replica_seconds
        assert first.autoscale.events == second.autoscale.events
        # reset() restored the initial pool before the second run.
        assert len(second.replica_stats) == len(first.replica_stats)

    def test_routing_never_targets_draining_or_retired(self):
        engine = autoscaled_engine()
        trace = make_trace(400)
        engine.run(trace, bursty_arrivals(400))
        for replica in engine.replicas:
            if replica.is_retired:
                assert not len(replica.queue)
                assert not replica.is_busy

    def test_telemetry_scoped_to_scalable_group(self):
        """Static groups' load must not leak into the scaling signals.

        Two busy static replicas plus one idle scalable replica: with
        engine-wide telemetry the static busy time would read as high
        utilization over num_active=1 and the pool would balloon; scoped
        telemetry sees an idle scaled group and never scales up.
        """
        ctl = AutoscaleController(
            "target_utilization",
            control_interval_ms=25.0,
            min_replicas=1,
            max_replicas=6,
            replica_factory=lambda pos: AcceleratorReplica(ConstantServer()),
        )
        # Arrivals every 6 ms, service 5 ms: JSQ finds replica 0 idle at
        # every arrival (ties go to the lowest index), so the static
        # replica 0 runs at ~83% utilization while the scalable index {2}
        # sees no traffic at all.
        replicas = [
            AcceleratorReplica(ConstantServer(5.0)),
            AcceleratorReplica(ConstantServer(5.0)),
            AcceleratorReplica(ConstantServer(5.0)),
        ]
        engine = ServingEngine(
            replicas, router="jsq", autoscaler=ctl, scalable_indices=(2,)
        )
        trace = make_trace(300)
        arrivals = np.cumsum(np.full(300, 6.0))
        result = engine.run(trace, arrivals)
        assert result.replica_stats[0].num_served == 300
        assert result.autoscale.num_scale_ups == 0
        assert len(result.replica_stats) == 3  # the pool never grew

    def test_duration_not_inflated_by_trailing_control_tick(self):
        """An autoscaler that never scales must cost exactly like the
        static pool on the same trace — no phantom control-interval tail."""
        trace = make_trace(40)
        arrivals = np.arange(1.0, 41.0)
        static = ServingEngine(
            [AcceleratorReplica(ConstantServer(), discipline="edf")],
            router="jsq",
            admission="drop_expired",
        ).run(trace, arrivals)
        ctl = AutoscaleController(
            # Thresholds no run can cross: the pool never changes size.
            ReactivePolicy(
                max_drop_rate=1.0, max_queue_per_replica=1e9, min_utilization=0.0
            ),
            control_interval_ms=33.0,
            min_replicas=1,
            max_replicas=4,
            replica_factory=lambda pos: AcceleratorReplica(
                ConstantServer(), discipline="edf"
            ),
        )
        scaled = ServingEngine(
            [AcceleratorReplica(ConstantServer(), discipline="edf")],
            router="jsq",
            admission="drop_expired",
            autoscaler=ctl,
        ).run(trace, arrivals)
        assert scaled.autoscale.num_scale_ups == 0
        assert scaled.duration_ms == static.duration_ms
        assert scaled.replica_seconds == static.replica_seconds
        assert scaled.records == static.records

    def test_autoscaled_engine_requires_factory(self):
        ctl = AutoscaleController("reactive", control_interval_ms=10.0)
        with pytest.raises(ValueError, match="replica_factory"):
            ServingEngine(
                [AcceleratorReplica(ConstantServer())], autoscaler=ctl
            )

    def test_static_engine_has_static_cost(self):
        engine = ServingEngine(
            [AcceleratorReplica(ConstantServer()) for _ in range(3)],
            router="jsq",
        )
        trace = make_trace(50)
        result = engine.run(trace, np.arange(1.0, 51.0))
        assert result.autoscale is None
        assert result.total_replica_active_ms == pytest.approx(
            3 * result.duration_ms
        )
        assert result.mean_active_replicas == pytest.approx(3.0)


# ----------------------------------------------------------- spec + facade
@pytest.fixture(scope="module")
def stack():
    return SushiStack(
        SushiStackConfig(
            supernet_name=SUPERNET, policy=Policy.STRICT_LATENCY, seed=0
        )
    )


@pytest.fixture(scope="module")
def stack_cache(stack):
    return {stack.config: stack}


def autoscaled_spec(autoscaler, *, groups=None, n=200) -> ScenarioSpec:
    return ScenarioSpec(
        name="autoscale",
        supernet_name=SUPERNET,
        policy=Policy.STRICT_LATENCY,
        replica_groups=groups
        or (ReplicaGroupSpec(count=1, discipline="edf", name="pool"),),
        router="jsq",
        admission="drop_expired",
        workload=WorkloadSpec(
            num_queries=n, accuracy_range=None, latency_range_ms=None
        ),
        arrivals=ArrivalSpec(
            kind="time_varying", segments=((100.0, 0.5), (40.0, 6.0)), seed=0
        ),
        autoscaler=autoscaler,
        seed=0,
    )


class TestAutoscalerSpec:
    @pytest.mark.parametrize(
        "spec",
        [
            AutoscalerSpec(),
            AutoscalerSpec(
                policy="reactive",
                control_interval_ms=12.5,
                window_ms=40.0,
                min_replicas=2,
                max_replicas=5,
                up_cooldown_ms=10.0,
                down_cooldown_ms=25.0,
                group="pool",
                max_drop_rate=0.01,
                max_queue_per_replica=2.0,
                min_utilization=0.3,
                scale_up_step=2,
                scale_down_step=1,
            ),
            AutoscalerSpec(policy="target_utilization", target_utilization=0.7),
            AutoscalerSpec(
                policy="scheduled",
                schedule=((0.0, 1), (50.0, 3)),
                period_ms=140.0,
            ),
        ],
    )
    def test_roundtrip(self, spec):
        import json

        back = AutoscalerSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert back == spec

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(policy="warp"),
            dict(control_interval_ms=0.0),
            dict(window_ms=-1.0),
            dict(min_replicas=0),
            dict(min_replicas=4, max_replicas=2),
            dict(up_cooldown_ms=-1.0),
            dict(policy="scheduled"),  # missing schedule
            dict(schedule=((0.0, 1),)),  # schedule without scheduled policy
            dict(policy="reactive", max_drop_rate=2.0),
            dict(policy="target_utilization", target_utilization=1.5),
            dict(policy="scheduled", schedule=((0.0, 0),)),
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ValueError):
            AutoscalerSpec(**kwargs)

    def test_scenario_roundtrip_with_autoscaler(self):
        import json

        spec = autoscaled_spec(AutoscalerSpec(group="pool"))
        back = ScenarioSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert back == spec

    def test_unknown_group_rejected(self):
        with pytest.raises(ValueError, match="names no replica group"):
            autoscaled_spec(AutoscalerSpec(group="nope"))

    def test_scaled_group_resolution(self):
        groups = (
            ReplicaGroupSpec(count=1, name="a"),
            ReplicaGroupSpec(count=1, name="b"),
        )
        by_name = autoscaled_spec(AutoscalerSpec(group="b"), groups=groups)
        assert by_name.scaled_group().name == "b"
        default = autoscaled_spec(AutoscalerSpec(), groups=groups)
        assert default.scaled_group().name == "a"
        with pytest.raises(ValueError, match="no autoscaler"):
            autoscaled_spec(None).scaled_group()


class TestFacadeAutoscaling:
    def test_null_autoscaler_is_record_identical(self, stack_cache):
        """autoscaler=None must not perturb the fixed-pool path at all."""
        base = autoscaled_spec(None, n=120)
        with_field = ScenarioSpec.from_dict(
            {**base.to_dict(), "autoscaler": None}
        )
        a = run_scenario(base, stack_cache=stack_cache)
        b = run_scenario(with_field, stack_cache=stack_cache)
        assert a.records == b.records
        assert a.dropped == b.dropped
        assert a.offered_load == b.offered_load
        assert b.autoscale is None

    def test_autoscaled_scenario_runs_and_reports(self, stack_cache):
        spec = autoscaled_spec(
            AutoscalerSpec(
                control_interval_ms=8.0, max_replicas=5, group="pool"
            )
        )
        result = run_scenario(spec, stack_cache=stack_cache)
        assert result.num_offered == 200
        assert result.autoscale is not None
        assert result.autoscale.num_scale_ups > 0
        assert result.replica_seconds > 0
        # Scale-ups cloned the group's stack: the new replicas carry the
        # group name and share the group's latency table.
        assert len(result.replica_stats) > 1
        assert all(s.name.startswith("pool-") for s in result.replica_stats)

    def test_scaled_clones_share_table_and_decorrelate_seeds(self, stack_cache):
        from repro.serving.api import build_engine, build_trace

        spec = autoscaled_spec(
            AutoscalerSpec(control_interval_ms=8.0, max_replicas=5)
        )
        trace = build_trace(spec, stack_cache=stack_cache)
        engine = build_engine(spec, trace=trace, stack_cache=stack_cache)
        engine.run(trace, spec.arrivals.generate(len(trace)))
        assert len(engine.replicas) > 1
        tables = {id(r.server.table) for r in engine.replicas}
        assert len(tables) == 1, "clones must share the group's latency table"
        seeds = [r.server.config.seed for r in engine.replicas]
        assert len(set(seeds)) == len(seeds), "clone seeds must decorrelate"

    def test_mixed_pool_scales_named_group_only(self, stack_cache):
        groups = (
            ReplicaGroupSpec(count=1, discipline="edf", name="static"),
            ReplicaGroupSpec(
                count=1, discipline="edf", name="elastic", pb_kb=432.0
            ),
        )
        spec = autoscaled_spec(
            AutoscalerSpec(
                control_interval_ms=8.0, max_replicas=4, group="elastic"
            ),
            groups=groups,
        )
        result = run_scenario(spec, stack_cache=stack_cache)
        names = [s.name for s in result.replica_stats]
        assert names[0] == "static-0"
        assert sum(1 for n in names if n.startswith("elastic")) >= 1
        # The static group never retires.
        assert result.replica_stats[0].active_ms == pytest.approx(
            result.duration_ms
        )


# ------------------------------------------------- the acceptance frontier
class TestFrontier:
    @pytest.fixture(scope="class")
    def frontier(self, stack):
        from repro.experiments import frontier_autoscale

        return frontier_autoscale.run(
            stack=stack,
            num_queries=500,
            static_counts=(1, 2, 3, 4, 6),
            reactive_queue_thresholds=(4.0,),
            utilization_targets=(0.5,),
            max_replicas=6,
            seed=0,
        )

    def test_reactive_beats_equal_cost_static(self, frontier):
        """The ISSUE acceptance bar: >= attainment of the best static pool
        of no greater cost, at lower cost than the peak-sized pool."""
        reactive = frontier.point("reactive-q4")
        best_static = frontier.best_static_within_cost(reactive.replica_seconds)
        assert reactive.slo_attainment >= best_static.slo_attainment
        peak = max(frontier.static_points(), key=lambda p: p.replica_seconds)
        assert reactive.replica_seconds < peak.replica_seconds

    def test_static_attainment_monotone_in_cost(self, frontier):
        statics = sorted(frontier.static_points(), key=lambda p: p.replica_seconds)
        attainments = [p.slo_attainment for p in statics]
        assert attainments == sorted(attainments)

    def test_pareto_contains_an_autoscaler(self, frontier):
        kinds = {p.kind for p in frontier.pareto()}
        assert kinds & {"reactive", "target_utilization", "scheduled"}

    def test_report_and_json_dump(self, frontier):
        from repro.experiments import frontier_autoscale

        text = frontier_autoscale.report(frontier)
        assert "replica-seconds" in text
        assert "Pareto" in text
        dump = frontier_autoscale.to_jsonable(frontier)
        import json

        json.dumps(dump)  # JSON-safe
        assert {p["label"] for p in dump["points"]} == {
            p.label for p in frontier.points
        }
