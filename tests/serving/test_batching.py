"""Batched dispatch: stack batch serving, engine pickup, spec round-trips.

Covers the whole batching column: ``SushiSched.schedule_shared`` and
``SushiStack.serve_dispatch_batch`` (one evaluation, at most one cache load,
one-query batches identical to ``serve_query``), ``pop_batch`` discipline /
admission behavior, the declarative ``BatchingSpec`` (exact JSON round-trip,
facade wiring, CLI override path), baseline batch paths, dispatch-time
record stamping (allocation-free completion), telemetry occupancy, and the
drain interaction under autoscaling.
"""

import dataclasses
import json

import numpy as np
import pytest

from repro.core.metrics import QueryRecord
from repro.core.policies import Policy
from repro.serving import (
    AcceleratorReplica,
    ArrivalSpec,
    BatchingSpec,
    ReplicaGroupSpec,
    ScenarioSpec,
    ServingEngine,
    SushiStack,
    SushiStackConfig,
    WorkloadSpec,
    build_engine,
    run_scenario,
)
from repro.serving.autoscale import TelemetryBus
from repro.serving.baselines import (
    FixedSubNetServer,
    NoSushiServer,
    StateUnawareCachingServer,
)
from repro.serving.engine.admission import make_admission
from repro.serving.engine.disciplines import QueuedQuery
from repro.serving.query import Query, QueryTrace
from repro.supernet.zoo import load_supernet, paper_pareto_subnets
from repro.accelerator.analytic_model import SushiAccelModel
from repro.accelerator.platforms import ANALYTIC_DEFAULT


@pytest.fixture(scope="module")
def stack():
    return SushiStack(
        SushiStackConfig(
            supernet_name="ofa_mobilenetv3",
            policy=Policy.STRICT_LATENCY,
            cache_update_period=4,
            seed=0,
        )
    )


@pytest.fixture(scope="module")
def family():
    supernet = load_supernet("ofa_mobilenetv3")
    subnets = paper_pareto_subnets(supernet)
    return supernet, subnets


def make_queries(n, *, accuracy=0.74, latency_ms=50.0):
    return [
        Query(index=i, accuracy_constraint=accuracy, latency_constraint_ms=latency_ms)
        for i in range(n)
    ]


# ------------------------------------------------------------ scheduler
class TestScheduleShared:
    def test_batch_of_one_is_schedule(self, stack):
        a, b = stack.clone(seed=0), stack.clone(seed=0)
        for q in make_queries(9):
            da = a.scheduler.schedule(
                accuracy_constraint=q.accuracy_constraint,
                latency_constraint_ms=q.latency_constraint_ms,
            )
            db = b.scheduler.schedule_shared(
                accuracy_constraint=q.accuracy_constraint,
                latency_constraint_ms=q.latency_constraint_ms,
                batch_size=1,
            )
            assert da == db
        assert a.scheduler.cache_state_idx == b.scheduler.cache_state_idx

    def test_batch_advances_the_window_by_its_size(self, stack):
        s = stack.clone(seed=0)
        s.scheduler.schedule_shared(
            accuracy_constraint=0.74, latency_constraint_ms=50.0, batch_size=7
        )
        assert s.scheduler.queries_seen == 7

    def test_batch_crossing_a_boundary_decides_once(self, stack):
        s = stack.clone(seed=0)
        # Q=4: a batch of 11 crosses two boundaries but decides once.
        decision = s.scheduler.schedule_shared(
            accuracy_constraint=0.74, latency_constraint_ms=50.0, batch_size=11
        )
        assert len(s.scheduler.decisions) == 1
        assert decision.next_cache_state_idx == s.scheduler.cache_state_idx

    def test_rejects_non_positive_batch(self, stack):
        with pytest.raises(ValueError, match="batch_size"):
            stack.clone(seed=0).scheduler.schedule_shared(
                accuracy_constraint=0.74, latency_constraint_ms=50.0, batch_size=0
            )


# ------------------------------------------------------------ stack batch
class TestServeDispatchBatch:
    def test_one_query_batch_identical_to_serve_query(self, stack):
        a, b = stack.clone(seed=0), stack.clone(seed=0)
        for q in make_queries(10):
            (rb,) = b.serve_dispatch_batch([q])
            assert a.serve_query(q) == rb
        assert a.pb.stats == b.pb.stats

    def test_batch_shares_one_subnet_and_one_evaluation(self, stack):
        s = stack.clone(seed=0)
        records = s.serve_dispatch_batch(make_queries(6))
        assert len({r.subnet_name for r in records}) == 1
        assert len({r.served_latency_ms for r in records}) == 1
        # At most one cache load, carried by the last member.
        assert all(r.cache_load_ms == 0.0 for r in records[:-1])

    def test_batch_amortizes_weight_traffic(self, stack):
        s = stack.clone(seed=0)
        k = 8
        records = s.serve_dispatch_batch(make_queries(k))
        single = stack.clone(seed=0).serve_query(make_queries(1)[0])
        batch_ms = records[0].served_latency_ms
        # Strictly cheaper than k independent evaluations, strictly dearer
        # than one (compute and activations are per member).
        assert batch_ms < k * single.served_latency_ms
        assert batch_ms > single.served_latency_ms

    def test_shared_decision_meets_strictest_accuracy(self, family):
        supernet, subnets = family
        accel = SushiAccelModel(ANALYTIC_DEFAULT)
        stack = SushiStack(
            SushiStackConfig(
                supernet_name="ofa_mobilenetv3",
                policy=Policy.STRICT_ACCURACY,
                seed=0,
            ),
            supernet=supernet,
            subnets=subnets,
            accel=accel,
        )
        accuracies = [0.74, 0.78, 0.76]
        queries = [
            Query(index=i, accuracy_constraint=a, latency_constraint_ms=50.0)
            for i, a in enumerate(accuracies)
        ]
        records = stack.serve_dispatch_batch(queries)
        # One shared SubNet, feasible for every member's constraint.
        assert len({r.subnet_name for r in records}) == 1
        for record in records:
            assert record.served_accuracy >= record.accuracy_constraint

    def test_empty_batch_rejected(self, stack):
        with pytest.raises(ValueError, match="at least one query"):
            stack.clone(seed=0).serve_dispatch_batch([])

    def test_mismatched_budget_list_rejected(self, stack):
        with pytest.raises(ValueError, match="match the batch"):
            stack.clone(seed=0).serve_dispatch_batch(
                make_queries(3), effective_latency_constraints_ms=[10.0]
            )


# ------------------------------------------------------------ baselines
class TestBaselineBatchPaths:
    def _servers(self, family):
        supernet, subnets = family
        return [
            NoSushiServer(
                supernet, subnets, SushiAccelModel(ANALYTIC_DEFAULT, with_pb=False)
            ),
            FixedSubNetServer(
                supernet, subnets, SushiAccelModel(ANALYTIC_DEFAULT, with_pb=False)
            ),
            StateUnawareCachingServer(
                supernet, subnets, SushiAccelModel(ANALYTIC_DEFAULT, with_pb=True)
            ),
        ]

    def test_one_query_batch_identical_to_serve_query(self, family):
        for fresh, batched in zip(self._servers(family), self._servers(family)):
            q = make_queries(1, accuracy=0.76)[0]
            assert [fresh.serve_query(q)] == batched.serve_dispatch_batch([q])

    def test_batches_amortize_on_every_baseline(self, family):
        for server in self._servers(family):
            queries = make_queries(6, accuracy=0.76)
            records = server.serve_dispatch_batch(queries)
            single = type(server).serve_query(server, queries[0])
            assert len({r.subnet_name for r in records}) == 1
            assert records[0].served_latency_ms < 6 * single.served_latency_ms

    def test_state_unaware_batch_reloads_at_most_once(self, family):
        supernet, subnets = family
        server = StateUnawareCachingServer(
            supernet,
            subnets,
            SushiAccelModel(ANALYTIC_DEFAULT, with_pb=True),
            cache_update_period=4,
        )
        records = server.serve_dispatch_batch(make_queries(10, accuracy=0.76))
        assert sum(1 for r in records if r.cache_load_ms > 0) <= 1
        assert all(r.cache_load_ms == 0.0 for r in records[:-1])


# ------------------------------------------------------------ pop_batch
class SynthServer:
    def serve_query(self, query, *, effective_latency_constraint_ms=None):
        return QueryRecord(
            query_index=query.index,
            accuracy_constraint=query.accuracy_constraint,
            latency_constraint_ms=query.latency_constraint_ms,
            subnet_name="synthetic",
            served_accuracy=0.78,
            served_latency_ms=1.0,
        )


class TestPopBatch:
    def _fill(self, replica, deadlines, now=0.0):
        for i, deadline in enumerate(deadlines):
            replica.enqueue(
                QueuedQuery(
                    query=Query(
                        index=i, accuracy_constraint=0.77,
                        latency_constraint_ms=deadline,
                    ),
                    arrival_ms=now,
                    seq=i,
                )
            )

    def test_honors_discipline_order(self):
        replica = AcceleratorReplica(SynthServer(), discipline="edf", max_batch=3)
        self._fill(replica, [30.0, 10.0, 20.0, 5.0])
        admitted, shed = replica.pop_batch(
            3, now_ms=0.0, admission=make_admission("admit_all")
        )
        assert [i.query.index for i in admitted] == [3, 1, 2]  # earliest deadlines
        assert shed == []
        assert len(replica.queue) == 1

    def test_sheds_expired_members_while_filling(self):
        replica = AcceleratorReplica(SynthServer(), max_batch=4)
        self._fill(replica, [5.0, 100.0, 5.0, 100.0])
        admitted, shed = replica.pop_batch(
            4, now_ms=50.0, admission=make_admission("drop_expired")
        )
        assert [i.query.index for i in admitted] == [1, 3]
        assert [i.query.index for i in shed] == [0, 2]

    def test_max_batch_caps_the_pickup(self):
        replica = AcceleratorReplica(SynthServer(), max_batch=2)
        self._fill(replica, [100.0] * 5)
        admitted, _ = replica.pop_batch(
            replica.max_batch, now_ms=0.0, admission=make_admission("admit_all")
        )
        assert len(admitted) == 2
        assert len(replica.queue) == 3

    def test_replica_rejects_bad_batching_config(self):
        with pytest.raises(ValueError, match="max_batch"):
            AcceleratorReplica(SynthServer(), max_batch=0)
        with pytest.raises(ValueError, match="batch_policy"):
            AcceleratorReplica(SynthServer(), batch_policy="mega")


# ------------------------------------------------------------ engine
class TestEngineBatching:
    def _run(self, *, max_batch, batch_policy="per_query", n=12):
        trace = QueryTrace.from_constraints([0.77] * n, [500.0] * n)
        arrivals = np.zeros(n)  # everything queues behind query 0
        engine = ServingEngine(
            [
                AcceleratorReplica(
                    SynthServer(), max_batch=max_batch, batch_policy=batch_policy
                )
            ]
        )
        return engine.run(trace, arrivals)

    def test_per_query_batch_members_run_back_to_back(self):
        result = self._run(max_batch=4)
        # First pickup serves query 0 alone (the queue fills while it runs);
        # the second pickup takes 4 and staggers their starts.
        batch2 = [o for o in result.outcomes if o.batch_size == 4][:4]
        starts = sorted(o.start_ms for o in batch2)
        assert starts == [1.0, 2.0, 3.0, 4.0]

    def test_per_query_members_see_their_true_remaining_budget(self):
        # Each member's effective budget is evaluated at its actual start,
        # so earlier members' service time has already eaten into it.
        budgets = []

        class Recording(SynthServer):
            def serve_query(self, query, *, effective_latency_constraint_ms=None):
                budgets.append(effective_latency_constraint_ms)
                return super().serve_query(query)

        n = 3
        trace = QueryTrace.from_constraints([0.77] * n, [100.0] * n)
        engine = ServingEngine(
            [AcceleratorReplica(Recording(), max_batch=3, batch_policy="per_query")]
        )
        engine.run(trace, np.zeros(n))
        # All three queue at t=0; the pickup at t=1 (after query 0's unit
        # service... actually query 0 is its own pickup) — member budgets
        # shrink by one unit of service per position in the batch.
        assert budgets == [100.0, 99.0, 98.0]

    def test_per_query_members_expiring_mid_batch_are_shed(self):
        # Query 2's deadline passes while query 1 runs inside the pickup:
        # it is dropped at its would-be start, exactly as the seed loop
        # serving the queue one at a time would have shed it.
        trace = QueryTrace.from_constraints([0.77] * 3, [100.0, 100.0, 1.5])
        engine = ServingEngine(
            [
                AcceleratorReplica(
                    SynthServer(), max_batch=3, batch_policy="per_query"
                )
            ],
            admission="drop_expired",
        )
        result = engine.run(trace, np.zeros(3))
        assert [o.query_index for o in result.outcomes] == [0, 1]
        (dropped,) = result.dropped
        assert dropped.query_index == 2
        assert dropped.dropped_at_ms == pytest.approx(2.0)  # its would-be start
        # The surviving pickup reports its post-shed size.
        assert {o.batch_size for o in result.outcomes if o.start_ms >= 1.0} == {1}

    def test_completion_is_one_event_per_batch(self):
        result = self._run(max_batch=4)
        # 12 zero-time arrivals on one replica: pickup of 1, then 4, 4, 3.
        assert result.num_batches == 4
        assert result.mean_batch_occupancy == pytest.approx(3.0)

    def test_records_stamped_with_replica_index_at_dispatch(self):
        n = 10
        trace = QueryTrace.from_constraints([0.77] * n, [500.0] * n)
        engine = ServingEngine(
            [AcceleratorReplica(SynthServer()) for _ in range(2)], router="jsq"
        )
        result = engine.run(trace, np.linspace(0.0, 3.0, n))
        for o in result.outcomes:
            assert o.record.replica_index == o.replica_index
        # The stamped record differs from the backend's only in the index.
        raw = SynthServer().serve_query(trace[0])
        stamped = next(o.record for o in result.outcomes if o.query_index == 0)
        assert dataclasses.replace(stamped, replica_index=0) == raw


# ------------------------------------------------------------ spec layer
class TestBatchingSpec:
    def test_defaults_disable_batching(self):
        assert BatchingSpec() == BatchingSpec(max_batch=1, policy="shared_subnet")
        assert ReplicaGroupSpec().batching.max_batch == 1

    def test_json_round_trip_is_exact(self):
        spec = ScenarioSpec(
            replica_groups=(
                ReplicaGroupSpec(
                    count=2, batching=BatchingSpec(max_batch=8, policy="per_query")
                ),
            )
        )
        assert ScenarioSpec.from_json(spec.to_json()) == spec
        data = json.loads(spec.to_json())
        assert data["replica_groups"][0]["batching"] == {
            "max_batch": 8,
            "policy": "per_query",
        }

    def test_json_without_batching_key_defaults(self):
        spec = ScenarioSpec.from_dict(
            {"replica_groups": [{"count": 1, "kind": "sushi"}]}
        )
        assert spec.replica_groups[0].batching == BatchingSpec()

    def test_json_null_batching_defaults(self):
        # "batching": null mirrors the nullable autoscaler field.
        spec = ScenarioSpec.from_dict(
            {"replica_groups": [{"count": 1, "kind": "sushi", "batching": None}]}
        )
        assert spec.replica_groups[0].batching == BatchingSpec()
        assert ReplicaGroupSpec(batching=None).batching == BatchingSpec()

    def test_mapping_coerces_to_batching_spec(self):
        group = ReplicaGroupSpec(batching={"max_batch": 4, "policy": "shared_subnet"})
        assert group.batching == BatchingSpec(max_batch=4)

    def test_validation(self):
        with pytest.raises(ValueError, match="max_batch"):
            BatchingSpec(max_batch=0)
        with pytest.raises(ValueError, match="batching policy"):
            BatchingSpec(policy="mega")

    def test_override_path_reaches_batching(self):
        spec = ScenarioSpec()
        tuned = spec.override("replica_groups.0.batching.max_batch", 8)
        assert tuned.replica_groups[0].batching.max_batch == 8

    def test_build_engine_wires_batching(self, stack):
        spec = ScenarioSpec(
            supernet_name="ofa_mobilenetv3",
            policy=Policy.STRICT_LATENCY,
            replica_groups=(
                ReplicaGroupSpec(
                    count=2, batching=BatchingSpec(max_batch=8, policy="per_query")
                ),
            ),
        )
        engine = build_engine(spec, stack_cache={stack.config: stack})
        assert all(r.max_batch == 8 for r in engine.replicas)
        assert all(r.batch_policy == "per_query" for r in engine.replicas)


# ------------------------------------------------------------ scenarios
class TestBatchedScenarios:
    def _spec(self, *, max_batch, rate=6.0, autoscaler=None, **overrides):
        return ScenarioSpec(
            name=f"batched-{max_batch}",
            supernet_name="ofa_mobilenetv3",
            policy=Policy.STRICT_LATENCY,
            cache_update_period=16,
            replica_groups=(
                ReplicaGroupSpec(
                    count=2,
                    discipline="edf",
                    batching=BatchingSpec(max_batch=max_batch),
                ),
            ),
            router="jsq",
            admission="drop_expired",
            workload=WorkloadSpec(
                num_queries=120, accuracy_range=None, latency_range_ms=(8.0, 40.0)
            ),
            arrivals=ArrivalSpec(kind="poisson", rate_per_ms=rate, seed=0),
            autoscaler=autoscaler,
            seed=0,
            **overrides,
        )

    def test_batch_one_scenario_matches_unbatched_spec(self, stack):
        cache = {stack.config: stack}
        batched = run_scenario(self._spec(max_batch=1), stack_cache=cache)
        spec = self._spec(max_batch=1)
        unbatched = run_scenario(
            dataclasses.replace(
                spec,
                replica_groups=(
                    dataclasses.replace(
                        spec.replica_groups[0], batching=BatchingSpec()
                    ),
                ),
            ),
            stack_cache=cache,
        )
        assert batched.outcomes == unbatched.outcomes
        assert batched.dropped == unbatched.dropped

    def test_batching_raises_goodput_at_overload(self, stack):
        cache = {stack.config: stack}
        b1 = run_scenario(self._spec(max_batch=1), stack_cache=cache)
        b8 = run_scenario(self._spec(max_batch=8), stack_cache=cache)
        assert b1.offered_load > 1.0
        assert b8.goodput_per_ms > b1.goodput_per_ms
        assert b8.mean_batch_occupancy > 1.5

    def test_shared_batches_in_scenarios_respect_feasible_accuracy(self):
        # Under STRICT_ACCURACY the shared decision takes the batch's
        # strictest accuracy constraint, so every member with a feasible
        # constraint is served at or above it.  (STRICT_LATENCY treats
        # accuracy as soft, so this guarantee is policy-specific.)
        spec = ScenarioSpec(
            name="batched-strict-accuracy",
            supernet_name="ofa_mobilenetv3",
            policy=Policy.STRICT_ACCURACY,
            replica_groups=(
                ReplicaGroupSpec(
                    count=2,
                    discipline="edf",
                    batching=BatchingSpec(max_batch=8),
                ),
            ),
            router="jsq",
            workload=WorkloadSpec(
                num_queries=120, accuracy_range=None, latency_range_ms=(8.0, 40.0)
            ),
            arrivals=ArrivalSpec(kind="poisson", rate_per_ms=4.0, seed=0),
            seed=0,
        )
        result = run_scenario(spec)
        table = SushiStack(
            SushiStackConfig(
                supernet_name="ofa_mobilenetv3", policy=Policy.STRICT_ACCURACY, seed=0
            )
        ).table
        max_accuracy = float(table.accuracies.max())
        batched = [o for o in result.outcomes if o.batch_size > 1]
        assert batched  # batching actually engaged
        for o in batched:
            if o.record.accuracy_constraint <= max_accuracy:
                assert o.served_accuracy >= o.record.accuracy_constraint

    def test_draining_replicas_finish_their_queues_in_batches(self, stack):
        from repro.serving.spec import AutoscalerSpec

        spec = self._spec(
            max_batch=8,
            rate=6.0,
            autoscaler=AutoscalerSpec(
                policy="scheduled",
                schedule=((0.0, 2), (15.0, 1)),
                control_interval_ms=5.0,
                min_replicas=1,
                max_replicas=2,
            ),
        )
        result = run_scenario(spec, stack_cache={stack.config: stack})
        assert result.autoscale is not None
        assert result.autoscale.num_scale_downs >= 1
        # Every query routed to the drained replica was still served or
        # shed through the normal dispatch path — nothing vanished.
        assert result.num_served + result.num_dropped == result.num_offered
        # Batches never mix replicas: each pickup's members share one index.
        batches = {}
        for o in result.outcomes:
            batches.setdefault((o.replica_index, o.start_ms), set()).add(
                o.batch_size
            )
        for members in batches.values():
            assert len(members) == 1


# ------------------------------------------------- the acceptance sweep
class TestBatchingSweep:
    @pytest.fixture(scope="class")
    def sweep(self):
        from repro.experiments import batching_sweep

        return batching_sweep.run(num_queries=300, batch_sizes=(1, 4, 8), seed=0)

    def test_shared_batching_beats_unbatched_goodput(self, sweep):
        """The ISSUE acceptance bar: the sweep's overload trace shows the
        shared-SubNet goodput frontier rising with B."""
        b1, b8 = sweep.point("B=1"), sweep.point("B=8")
        assert b8.goodput_per_ms > b1.goodput_per_ms
        assert b8.mean_batch_occupancy > 1.5

    def test_shared_beats_per_query_at_equal_batch(self, sweep):
        """Weight sharing is what makes batching pay: the same pickup size
        without a shared evaluation serves strictly less goodput."""
        assert (
            sweep.point("B=8").goodput_per_ms
            > sweep.point("B=8-per-query").goodput_per_ms
        )

    def test_unbatched_cell_reports_unit_occupancy(self, sweep):
        assert sweep.point("B=1").mean_batch_occupancy == pytest.approx(1.0)

    def test_report_and_json_dump(self, sweep):
        from repro.experiments import batching_sweep

        text = batching_sweep.report(sweep)
        assert "goodput" in text
        assert "cache loads" in text
        dump = batching_sweep.to_jsonable(sweep)
        json.dumps(dump)  # JSON-safe
        assert {p["label"] for p in dump["points"]} == {
            p.label for p in sweep.points
        }


# ------------------------------------------------------------ telemetry
class TestBatchTelemetry:
    def test_snapshot_reports_mean_batch_occupancy(self):
        bus = TelemetryBus(window_ms=100.0)
        bus.on_batch(10.0, batch_size=4)
        bus.on_batch(20.0, batch_size=8)
        snap = bus.snapshot(50.0, num_active=1)
        assert snap.mean_batch_occupancy == pytest.approx(6.0)
        assert bus.total_batches == 2

    def test_occupancy_window_prunes(self):
        bus = TelemetryBus(window_ms=50.0)
        bus.on_batch(10.0, batch_size=8)
        bus.on_batch(90.0, batch_size=2)
        snap = bus.snapshot(100.0, num_active=1)
        assert snap.mean_batch_occupancy == pytest.approx(2.0)

    def test_occupancy_zero_without_pickups(self):
        bus = TelemetryBus(window_ms=50.0)
        assert bus.snapshot(10.0, num_active=1).mean_batch_occupancy == 0.0

    def test_reset_clears_batches(self):
        bus = TelemetryBus(window_ms=50.0)
        bus.on_batch(10.0, batch_size=8)
        bus.reset()
        assert bus.total_batches == 0
        assert bus.snapshot(20.0, num_active=1).mean_batch_occupancy == 0.0

    def test_engine_feeds_batch_occupancy(self, stack):
        from repro.serving.spec import AutoscalerSpec

        spec = ScenarioSpec(
            supernet_name="ofa_mobilenetv3",
            policy=Policy.STRICT_LATENCY,
            replica_groups=(
                ReplicaGroupSpec(
                    count=1, discipline="edf", batching=BatchingSpec(max_batch=8)
                ),
            ),
            admission="drop_expired",
            workload=WorkloadSpec(
                num_queries=60, accuracy_range=None, latency_range_ms=(8.0, 40.0)
            ),
            arrivals=ArrivalSpec(kind="poisson", rate_per_ms=4.0, seed=0),
            autoscaler=AutoscalerSpec(
                policy="reactive", control_interval_ms=10.0, max_replicas=2
            ),
            seed=0,
        )
        engine = build_engine(spec, stack_cache={stack.config: stack})
        trace_spec = spec
        from repro.serving.api import build_trace

        trace = build_trace(trace_spec, stack_cache={stack.config: stack})
        engine.run(trace, spec.arrivals.generate(len(trace)))
        assert engine.autoscaler.bus.total_batches > 0
        assert (
            engine.autoscaler.bus.total_dispatches
            >= engine.autoscaler.bus.total_batches
        )
