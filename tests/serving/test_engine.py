"""Unit tests for the discrete-event multi-replica serving engine."""

import numpy as np
import pytest

from repro.core.metrics import QueryRecord
from repro.core.policies import Policy
from repro.serving.engine import (
    AcceleratorReplica,
    AdmitAll,
    DropExpired,
    EDFQueue,
    EventHeap,
    FIFOQueue,
    FastestExpectedRouter,
    JoinShortestQueueRouter,
    LeastLoadedRouter,
    PrecomputedServer,
    QueuedQuery,
    RoundRobinRouter,
    ServingEngine,
    SlackPriorityQueue,
    build_stack_engine,
    make_admission,
    make_discipline,
    make_router,
)
from repro.serving.engine.events import Event, EventKind
from repro.serving.query import Query, QueryTrace
from repro.serving.stack import SushiStack, SushiStackConfig
from repro.serving.workload import WorkloadGenerator, WorkloadSpec


class ConstantServer:
    """Synthetic backend with a fixed service time."""

    def __init__(self, service_ms: float, accuracy: float = 0.78) -> None:
        self.service_ms = service_ms
        self.accuracy = accuracy
        self.effective_budgets: list[float | None] = []

    def serve_query(self, query, *, effective_latency_constraint_ms=None):
        self.effective_budgets.append(effective_latency_constraint_ms)
        return QueryRecord(
            query_index=query.index,
            accuracy_constraint=query.accuracy_constraint,
            latency_constraint_ms=query.latency_constraint_ms,
            subnet_name="synthetic",
            served_accuracy=self.accuracy,
            served_latency_ms=self.service_ms,
        )


def make_trace(n, *, latency_ms=10.0):
    return QueryTrace.from_constraints([0.77] * n, [latency_ms] * n)


def queued(index, arrival, seq, *, constraint=10.0, estimate=0.0):
    q = Query(index=index, accuracy_constraint=0.77, latency_constraint_ms=constraint)
    return QueuedQuery(
        query=q, arrival_ms=arrival, seq=seq, service_estimate_ms=estimate
    )


class TestEventHeap:
    def test_orders_by_time_then_kind(self):
        heap = EventHeap()
        heap.push(Event(2.0, EventKind.ARRIVAL, "a2"))
        heap.push(Event(1.0, EventKind.ARRIVAL, "a1"))
        heap.push(Event(2.0, EventKind.COMPLETION, "c2"))
        assert heap.pop().payload == "a1"
        # Completions fire before arrivals at equal timestamps.
        assert heap.pop().payload == "c2"
        assert heap.pop().payload == "a2"

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            EventHeap().pop()


class TestDisciplines:
    def test_fifo_preserves_arrival_order(self):
        q = FIFOQueue()
        for i in range(3):
            q.push(queued(i, arrival=float(i), seq=i))
        assert [q.pop().query.index for _ in range(3)] == [0, 1, 2]

    def test_edf_pops_earliest_deadline(self):
        q = EDFQueue()
        q.push(queued(0, arrival=0.0, seq=0, constraint=50.0))   # deadline 50
        q.push(queued(1, arrival=5.0, seq=1, constraint=10.0))   # deadline 15
        q.push(queued(2, arrival=1.0, seq=2, constraint=30.0))   # deadline 31
        assert [q.pop().query.index for _ in range(3)] == [1, 2, 0]

    def test_slack_accounts_for_service_estimate(self):
        q = SlackPriorityQueue()
        # Same deadline, but index 1 needs much longer service: less slack.
        q.push(queued(0, arrival=0.0, seq=0, constraint=20.0, estimate=1.0))
        q.push(queued(1, arrival=0.0, seq=1, constraint=20.0, estimate=15.0))
        assert q.pop().query.index == 1

    def test_factory_rejects_unknown(self):
        with pytest.raises(ValueError):
            make_discipline("lifo")
        assert isinstance(make_discipline("priority_by_slack"), SlackPriorityQueue)


class TestAdmission:
    def test_admit_all(self):
        assert AdmitAll().admit(queued(0, 0.0, 0, constraint=1.0), now_ms=99.0)

    def test_drop_expired_sheds_late_queries(self):
        policy = DropExpired()
        item = queued(0, arrival=0.0, seq=0, constraint=5.0)
        assert policy.admit(item, now_ms=4.9)
        assert not policy.admit(item, now_ms=5.0)

    def test_factory_rejects_unknown(self):
        with pytest.raises(ValueError):
            make_admission("always_drop")


class TestRouting:
    def _replicas(self, n):
        return [
            AcceleratorReplica(ConstantServer(1.0), index=i) for i in range(n)
        ]

    def test_round_robin_cycles(self):
        router = RoundRobinRouter()
        replicas = self._replicas(3)
        item = queued(0, 0.0, 0)
        picks = [router.select(replicas, item, 0.0) for _ in range(6)]
        assert picks == [0, 1, 2, 0, 1, 2]

    def test_jsq_prefers_idle_replica(self):
        replicas = self._replicas(2)
        replicas[0].enqueue(queued(0, 0.0, 0))
        router = JoinShortestQueueRouter()
        assert router.select(replicas, queued(1, 0.0, 1), 0.0) == 1

    def test_least_loaded_uses_backlog(self):
        replicas = self._replicas(2)
        replicas[0].enqueue(queued(0, 0.0, 0, estimate=1.0))
        replicas[1].enqueue(queued(1, 0.0, 1, estimate=50.0))
        router = LeastLoadedRouter()
        assert router.select(replicas, queued(2, 0.0, 2), 0.0) == 0

    def test_fastest_expected_prefers_fast_server_when_idle(self):
        # Equal backlogs: the replica whose estimator predicts the smaller
        # service time for *this query* wins (its group's latency table).
        replicas = [
            AcceleratorReplica(ConstantServer(1.0), index=0,
                               service_estimator=lambda q: 20.0),
            AcceleratorReplica(ConstantServer(1.0), index=1,
                               service_estimator=lambda q: 2.0),
        ]
        router = FastestExpectedRouter()
        assert router.select(replicas, queued(0, 0.0, 0), 0.0) == 1

    def test_fastest_expected_trades_backlog_against_speed(self):
        # The fast replica is so backlogged that the slow idle one finishes
        # this query earlier: 30 + 2 > 0 + 20.
        replicas = [
            AcceleratorReplica(ConstantServer(1.0), index=0,
                               service_estimator=lambda q: 20.0),
            AcceleratorReplica(ConstantServer(1.0), index=1,
                               service_estimator=lambda q: 2.0),
        ]
        replicas[1].enqueue(queued(0, 0.0, 0, estimate=30.0))
        router = FastestExpectedRouter()
        assert router.select(replicas, queued(1, 0.0, 1), 0.0) == 0

    def test_fastest_expected_ties_resolve_to_lowest_index(self):
        replicas = [
            AcceleratorReplica(ConstantServer(1.0), index=i,
                               service_estimator=lambda q: 5.0)
            for i in range(3)
        ]
        router = FastestExpectedRouter()
        assert router.select(replicas, queued(0, 0.0, 0), 0.0) == 0

    def test_factory_rejects_unknown(self):
        with pytest.raises(ValueError):
            make_router("random")
        assert make_router("fastest_expected").name == "fastest_expected"


class TestEngineOpenLoop:
    def test_single_replica_fifo_matches_lindley_recursion(self):
        server = ConstantServer(2.0)
        engine = ServingEngine([AcceleratorReplica(server)], admission="admit_all")
        trace = make_trace(20)
        arrivals = np.arange(20, dtype=float) * 1.5  # rho > 1: queue builds
        result = engine.run(trace, arrivals)
        prev_completion = 0.0
        for o in result.outcomes:
            assert o.start_ms == pytest.approx(max(o.arrival_ms, prev_completion))
            prev_completion = o.completion_ms

    def test_effective_budget_shrinks_with_waiting(self):
        server = ConstantServer(5.0)
        engine = ServingEngine([AcceleratorReplica(server)])
        trace = make_trace(5, latency_ms=10.0)
        arrivals = np.zeros(5)  # all arrive at t=0, each waits 5ms more
        engine.run(trace, arrivals)
        budgets = server.effective_budgets
        assert budgets[0] == pytest.approx(10.0)
        assert budgets[1] == pytest.approx(5.0)
        # Once the wait exceeds the constraint the budget floors just above 0.
        assert all(b > 0 for b in budgets)
        assert budgets[3] < 1e-6

    def test_drop_expired_sheds_and_accounts(self):
        server = ConstantServer(4.0)
        engine = ServingEngine(
            [AcceleratorReplica(server)], admission="drop_expired"
        )
        trace = make_trace(10, latency_ms=6.0)
        arrivals = np.zeros(10)
        result = engine.run(trace, arrivals)
        assert result.num_dropped > 0
        assert result.num_served + result.num_dropped == len(trace)
        assert result.drop_rate == pytest.approx(result.num_dropped / len(trace))
        assert result.replica_stats[0].num_dropped == result.num_dropped
        # Dropped queries count as SLO violations.
        met = sum(o.meets_slo for o in result.outcomes)
        assert result.slo_attainment == pytest.approx(met / len(trace))

    def test_two_replicas_halve_the_backlog(self):
        trace = make_trace(40)
        arrivals = np.arange(40, dtype=float)  # 1 query/ms, service 1.8ms
        single = ServingEngine([AcceleratorReplica(ConstantServer(1.8))])
        double = ServingEngine(
            [AcceleratorReplica(ConstantServer(1.8), index=i) for i in range(2)],
            router="jsq",
        )
        r1 = single.run(trace, arrivals)
        r2 = double.run(trace, arrivals)
        assert r2.mean_queueing_ms < r1.mean_queueing_ms
        assert r2.slo_attainment >= r1.slo_attainment
        assert {o.replica_index for o in r2.outcomes} == {0, 1}
        # Records are stamped with the replica that served them.
        assert all(o.record.replica_index == o.replica_index for o in r2.outcomes)

    def test_replica_stats_consistent(self):
        engine = ServingEngine(
            [AcceleratorReplica(ConstantServer(2.0), index=i) for i in range(2)],
            router="round_robin",
        )
        trace = make_trace(12)
        arrivals = np.linspace(0, 30, 12)
        result = engine.run(trace, arrivals)
        assert sum(s.num_served for s in result.replica_stats) == 12
        for s in result.replica_stats:
            assert s.busy_ms == pytest.approx(2.0 * s.num_served)

    def test_achieved_throughput_and_offered_load(self):
        engine = ServingEngine([AcceleratorReplica(ConstantServer(2.0))])
        trace = make_trace(30)
        result = engine.run_open_loop(trace, arrival_rate_per_ms=1.0, seed=0)
        assert result.offered_load == pytest.approx(2.0)
        makespan = max(o.completion_ms for o in result.outcomes)
        assert result.achieved_throughput_per_ms == pytest.approx(30 / makespan)

    def test_arrivals_shape_validated(self):
        engine = ServingEngine([AcceleratorReplica(ConstantServer(1.0))])
        with pytest.raises(ValueError):
            engine.run(make_trace(5), np.zeros(4))

    def test_replica_index_mismatch_rejected(self):
        with pytest.raises(ValueError):
            ServingEngine(
                [AcceleratorReplica(ConstantServer(1.0), index=1)]
            )

    def test_closed_loop_requires_single_replica(self):
        engine = ServingEngine(
            [AcceleratorReplica(ConstantServer(1.0), index=i) for i in range(2)]
        )
        with pytest.raises(ValueError):
            engine.run_closed_loop(make_trace(3))

    def test_closed_loop_with_per_query_backend(self):
        # A backend without a vectorized serve() is driven via serve_query.
        engine = ServingEngine([AcceleratorReplica(ConstantServer(2.0))])
        result = engine.run_closed_loop(make_trace(5))
        assert [o.start_ms for o in result.outcomes] == pytest.approx(
            [0.0, 2.0, 4.0, 6.0, 8.0]
        )
        assert all(o.queueing_ms == 0.0 for o in result.outcomes)
        assert result.offered_load == pytest.approx(1.0)
        assert result.replica_stats[0].num_served == 5

    def test_deterministic_given_seed(self):
        engine = ServingEngine([AcceleratorReplica(ConstantServer(1.5))])
        trace = make_trace(25)
        a = engine.run_open_loop(trace, arrival_rate_per_ms=0.8, seed=7)
        b = engine.run_open_loop(trace, arrival_rate_per_ms=0.8, seed=7)
        assert a.mean_response_ms == b.mean_response_ms
        assert [o.start_ms for o in a.outcomes] == [o.start_ms for o in b.outcomes]


@pytest.fixture(scope="module")
def mobilenet_stack():
    return SushiStack(
        SushiStackConfig(
            supernet_name="ofa_mobilenetv3",
            policy=Policy.STRICT_ACCURACY,
            cache_update_period=4,
            seed=0,
        )
    )


@pytest.fixture(scope="module")
def mobilenet_trace():
    spec = WorkloadSpec(
        num_queries=40, accuracy_range=(0.758, 0.803), latency_range_ms=(0.3, 2.0)
    )
    return WorkloadGenerator(spec, seed=11).generate()


class TestEngineWithSushiStack:
    def test_closed_loop_matches_direct_serve(self, mobilenet_stack, mobilenet_trace):
        """Acceptance: the per-query engine path reproduces stack.serve exactly."""
        mobilenet_stack.reset()
        direct = mobilenet_stack.serve(mobilenet_trace)
        engine = build_stack_engine(mobilenet_stack, num_replicas=1)
        result = engine.run_closed_loop(mobilenet_trace)
        assert list(result.records) == direct
        assert all(o.queueing_ms == 0.0 for o in result.outcomes)
        assert result.offered_load == pytest.approx(1.0)

    def test_serve_query_matches_batched_serve(self, mobilenet_stack, mobilenet_trace):
        a = mobilenet_stack.clone()
        b = mobilenet_stack.clone()
        batched = a.serve(mobilenet_trace)
        per_query = [b.serve_query(q) for q in mobilenet_trace]
        assert batched == per_query

    def test_clone_shares_table_but_not_state(self, mobilenet_stack):
        clone = mobilenet_stack.clone()
        assert clone.table is mobilenet_stack.table
        assert clone.scheduler is not mobilenet_stack.scheduler
        assert clone.pb is not mobilenet_stack.pb

    def test_build_stack_engine_leaves_original_untouched(
        self, mobilenet_stack, mobilenet_trace
    ):
        mobilenet_stack.reset()
        before = mobilenet_stack.scheduler.queries_seen
        engine = build_stack_engine(mobilenet_stack, num_replicas=2, router="jsq")
        engine.run_open_loop(mobilenet_trace, arrival_rate_per_ms=1.0, seed=0)
        assert mobilenet_stack.scheduler.queries_seen == before

    def test_estimate_service_is_side_effect_free(self, mobilenet_stack, mobilenet_trace):
        stack = mobilenet_stack.clone()
        seen = stack.scheduler.queries_seen
        estimate = stack.estimate_service_ms(mobilenet_trace[0])
        assert estimate > 0
        assert stack.scheduler.queries_seen == seen

    def test_precomputed_server_replays_records(self, mobilenet_stack, mobilenet_trace):
        stack = mobilenet_stack.clone()
        records = stack.serve(mobilenet_trace)
        server = PrecomputedServer(records)
        assert server.serve_query(mobilenet_trace[3]) == records[3]
        with pytest.raises(KeyError):
            server.serve_query(
                Query(index=999, accuracy_constraint=0.77, latency_constraint_ms=1.0)
            )
