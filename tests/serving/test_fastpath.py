"""The engine fast path is an execution strategy, not a semantics change.

``fast_path=True`` swaps the Event/EventHeap loop for a cursor over the
arrival buffer plus a raw-tuple completion heap; ``shard=True`` additionally
simulates each replica's arrival sub-stream independently.  Everything
observable — outcomes, drops, per-replica stats, run duration, and with an
autoscaler the full scaling report — must be bit-identical to the reference
loop.  These tests pin that contract across disciplines, routers, admission
policies, batching, autoscaled pools and multiprocess sharding, plus the
spec/CLI surface (``fast_path``/``shard``/``shard_workers`` knobs,
``repro run --profile``).
"""

from __future__ import annotations

import multiprocessing
import sys

import numpy as np
import pytest

from repro.core.metrics import QueryRecord
from repro.serving import ArrayQueryTrace
from repro.serving.api import build_trace, run_scenario
from repro.serving.autoscale import AutoscaleController
from repro.serving.engine import AcceleratorReplica, ServingEngine
from repro.serving.query import QueryTrace
from repro.serving.spec import (
    ArrivalSpec,
    ReplicaGroupSpec,
    ScenarioSpec,
    WorkloadSpec,
)
from repro.serving.workload import WorkloadGenerator
from repro.serving.workload import WorkloadSpec as GenWorkloadSpec


class IndexedServer:
    """Synthetic backend with per-query-index service times (picklable)."""

    def __init__(self, services_ms):
        self.services_ms = list(services_ms)

    def serve_query(self, query, *, effective_latency_constraint_ms=None):
        return QueryRecord(
            query_index=query.index,
            accuracy_constraint=query.accuracy_constraint,
            latency_constraint_ms=query.latency_constraint_ms,
            subnet_name="synthetic",
            served_accuracy=0.78,
            served_latency_ms=self.services_ms[query.index % len(self.services_ms)],
        )


def make_workload(n, *, seed=0, rate_per_ms=0.6):
    """(reference trace, array trace, arrivals, service table) for one run.

    Both traces come from the same seeded generator, so they describe the
    *same* queries — one eagerly materialized, one lazily array-backed.
    """
    gen = WorkloadGenerator(
        GenWorkloadSpec(num_queries=n, pattern="uniform"), seed=seed
    )
    trace = gen.generate()
    atrace = gen.generate_array_trace()
    rng = np.random.default_rng(seed + 1)
    arrivals = np.cumsum(rng.exponential(1.0 / rate_per_ms, size=n))
    services = rng.uniform(0.5, 6.0, size=n).tolist()
    return trace, atrace, arrivals, services


def make_engine(services, *, num_replicas=3, discipline="fifo",
                router="round_robin", admission="admit_all", max_batch=1,
                autoscaler=None):
    replicas = [
        AcceleratorReplica(
            IndexedServer(services), discipline=discipline, max_batch=max_batch
        )
        for _ in range(num_replicas)
    ]
    return ServingEngine(
        replicas, router=router, admission=admission, autoscaler=autoscaler
    )


def assert_identical(result, ref):
    assert result.outcomes == ref.outcomes
    assert result.dropped == ref.dropped
    assert result.replica_stats == ref.replica_stats
    assert result.duration_ms == ref.duration_ms
    assert result.num_served == ref.num_served
    assert result.num_dropped == ref.num_dropped


# -------------------------------------------------------- fast path identity
class TestFastPathIdentity:
    @pytest.mark.parametrize("discipline", ["fifo", "edf", "priority_by_slack"])
    @pytest.mark.parametrize("router", ["round_robin", "jsq", "least_loaded"])
    @pytest.mark.parametrize("admission", ["admit_all", "drop_expired"])
    def test_matches_reference_across_policies(self, discipline, router, admission):
        trace, atrace, arrivals, services = make_workload(600, seed=11)
        kw = dict(discipline=discipline, router=router, admission=admission)
        ref = make_engine(services, **kw).run(trace, arrivals)
        fast = make_engine(services, **kw).run(atrace, arrivals, fast_path=True)
        assert_identical(fast, ref)

    def test_accepts_reference_trace_type(self):
        """The fast loop does not require an ArrayQueryTrace."""
        trace, _, arrivals, services = make_workload(200, seed=5)
        ref = make_engine(services).run(trace, arrivals)
        fast = make_engine(services).run(trace, arrivals, fast_path=True)
        assert_identical(fast, ref)

    def test_matches_reference_with_batching(self):
        trace, atrace, arrivals, services = make_workload(500, seed=7, rate_per_ms=1.5)
        kw = dict(max_batch=4, admission="drop_expired", discipline="edf")
        ref = make_engine(services, **kw).run(trace, arrivals)
        fast = make_engine(services, **kw).run(atrace, arrivals, fast_path=True)
        assert_identical(fast, ref)

    def test_matches_reference_with_autoscaler(self):
        """With a control plane the fast path is the ArrayEventQueue drain."""

        def scaled(**run_kwargs):
            trace, atrace, arrivals, services = make_workload(
                800, seed=3, rate_per_ms=1.2
            )
            ctl = AutoscaleController(
                "reactive",
                control_interval_ms=25.0,
                min_replicas=1,
                max_replicas=6,
                startup_delay_ms=30.0,
                replica_factory=lambda pos: AcceleratorReplica(
                    IndexedServer(services), discipline="edf"
                ),
            )
            engine = make_engine(
                services, num_replicas=1, discipline="edf", router="jsq",
                admission="drop_expired", autoscaler=ctl,
            )
            use = atrace if run_kwargs.get("fast_path") else trace
            return engine.run(use, arrivals, **run_kwargs)

        ref = scaled()
        fast = scaled(fast_path=True)
        assert_identical(fast, ref)
        assert ref.autoscale is not None
        assert fast.autoscale == ref.autoscale
        # The run exercised actual scaling, not a degenerate flat pool.
        assert ref.autoscale.num_scale_ups > 0


# ---------------------------------------------------------- sharded identity
class TestShardedIdentity:
    def test_matches_reference_sequential(self):
        trace, atrace, arrivals, services = make_workload(700, seed=13)
        kw = dict(num_replicas=4, admission="drop_expired", discipline="edf")
        ref = make_engine(services, **kw).run(trace, arrivals)
        shard = make_engine(services, **kw).run(atrace, arrivals, shard=True)
        assert_identical(shard, ref)

    @pytest.mark.skipif(
        "fork" not in multiprocessing.get_all_start_methods(),
        reason="multiprocess sharding needs fork",
    )
    def test_matches_reference_multiprocess(self):
        trace, atrace, arrivals, services = make_workload(700, seed=13)
        kw = dict(num_replicas=4, admission="drop_expired", discipline="edf")
        ref = make_engine(services, **kw).run(trace, arrivals)
        shard = make_engine(services, **kw).run(
            atrace, arrivals, shard=True, shard_workers=2
        )
        assert_identical(shard, ref)

    def test_rejects_load_aware_router(self):
        _, atrace, arrivals, services = make_workload(50)
        engine = make_engine(services, router="jsq")
        with pytest.raises(ValueError, match="round_robin"):
            engine.run(atrace, arrivals, shard=True)

    def test_rejects_autoscaler(self):
        _, atrace, arrivals, services = make_workload(50)
        ctl = AutoscaleController(
            "reactive",
            control_interval_ms=25.0,
            replica_factory=lambda pos: AcceleratorReplica(IndexedServer([1.0])),
        )
        engine = make_engine(services, num_replicas=1, autoscaler=ctl)
        with pytest.raises(ValueError, match="autoscaler"):
            engine.run(atrace, arrivals, shard=True)

    def test_rejects_bad_worker_count(self):
        _, atrace, arrivals, services = make_workload(50)
        engine = make_engine(services)
        with pytest.raises(ValueError, match="shard_workers"):
            engine.run(atrace, arrivals, shard=True, shard_workers=0)


# ------------------------------------------------------------- spec and API
def scenario(**overrides):
    fields = dict(
        name="fastpath-test",
        supernet_name="ofa_mobilenetv3",
        replica_groups=(ReplicaGroupSpec(count=2, discipline="edf"),),
        router="round_robin",
        admission="drop_expired",
        workload=WorkloadSpec(
            num_queries=120, accuracy_range=None, latency_range_ms=None
        ),
        arrivals=ArrivalSpec(kind="poisson", rate_per_ms=0.8, seed=1),
        seed=1,
    )
    fields.update(overrides)
    return ScenarioSpec(**fields)


class TestSpecKnobs:
    def test_knobs_round_trip_exactly(self):
        spec = scenario(fast_path=True, shard=True, shard_workers=2)
        again = ScenarioSpec.from_json(spec.to_json())
        assert again == spec
        assert again.to_json() == spec.to_json()
        d = spec.to_dict()
        assert d["fast_path"] is True
        assert d["shard"] is True
        assert d["shard_workers"] == 2

    def test_shard_requires_round_robin(self):
        with pytest.raises(ValueError, match="round_robin"):
            scenario(shard=True, router="jsq")

    def test_shard_workers_requires_shard(self):
        with pytest.raises(ValueError, match="shard_workers"):
            scenario(shard_workers=2)

    def test_build_trace_materializes_lazily_for_fast_specs(self):
        assert isinstance(build_trace(scenario()), QueryTrace)
        assert isinstance(build_trace(scenario(fast_path=True)), ArrayQueryTrace)
        assert isinstance(build_trace(scenario(shard=True)), ArrayQueryTrace)

    def test_run_scenario_fast_and_shard_match_reference(self):
        ref = run_scenario(scenario())
        fast = run_scenario(scenario(fast_path=True))
        shard = run_scenario(scenario(shard=True))
        for result in (fast, shard):
            assert_identical(result, ref)


# ----------------------------------------------------------------- CLI knob
class TestCliProfile:
    def test_run_profile_dumps_stats_and_hotspots(self, tmp_path, capsys):
        from repro.cli import main

        stats = tmp_path / "fig02.pstats"
        assert main(["run", "fig02", "--profile", str(stats)]) == 0
        out = capsys.readouterr().out
        assert stats.exists() and stats.stat().st_size > 0
        assert "top 10 by cumulative time" in out

        import pstats

        loaded = pstats.Stats(str(stats))
        assert loaded.total_calls > 0  # real profile data, not an empty dump

    def test_run_profile_unwritable_path_fails_cleanly(self, tmp_path, capsys):
        from repro.cli import main

        bad = tmp_path / "no" / "such" / "dir" / "out.pstats"
        assert main(["run", "fig02", "--profile", str(bad)]) == 2
        assert "cannot write" in capsys.readouterr().err
