"""Tests for fault injection and self-healing (``docs/robustness.md``).

Covers the :class:`FaultInjector` unit semantics (validation, seeded
replay, retry backoff, the brownout ladder), the engine-level fault plane
(crash loss + retries, stragglers, transient dispatch failures, shedding
with a dead pool, the scale-down/crash race), the declarative
``FaultSpec`` wiring and round-trip, the self-healing scenario checked in
at ``examples/scenarios/faulty_pool.json``, the fault view of the trace
summaries and ``tools/validate_trace.py``, and the
``resilience_frontier`` experiment's acceptance bar.  The bit-identity of
``faults: null`` lives in ``tests/properties/test_property_faults.py``.
"""

from __future__ import annotations

import dataclasses
import json
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest
from numpy.random import default_rng

from repro.core.metrics import QueryRecord
from repro.core.policies import Policy
from repro.experiments import resilience_frontier
from repro.experiments.registry import EXPERIMENTS
from repro.serving import (
    ArrivalSpec,
    AutoscalerSpec,
    FaultSpec,
    ReplicaGroupSpec,
    RetryPolicy,
    ScenarioSpec,
    WorkloadSpec,
    run_scenario,
    scenario_schema,
)
from repro.serving.engine import (
    AcceleratorReplica,
    EventHeap,
    FaultInjector,
    ServingEngine,
)
from repro.serving.engine.events import Event, EventKind
from repro.serving.obs import (
    TraceRecorder,
    chrome_trace,
    summarize_chrome_trace,
    summarize_trace,
)
from repro.serving.query import QueryTrace

REPO_ROOT = Path(__file__).resolve().parents[2]
VALIDATOR = REPO_ROOT / "tools" / "validate_trace.py"
FAULTY_SCENARIO = REPO_ROOT / "examples" / "scenarios" / "faulty_pool.json"


class ConstantServer:
    """Synthetic backend with a fixed service time."""

    def __init__(self, service_ms: float, accuracy: float = 0.78) -> None:
        self.service_ms = service_ms
        self.accuracy = accuracy
        self.accuracy_floors: list[float] = []

    def serve_query(self, query, *, effective_latency_constraint_ms=None):
        self.accuracy_floors.append(query.accuracy_constraint)
        return QueryRecord(
            query_index=query.index,
            accuracy_constraint=query.accuracy_constraint,
            latency_constraint_ms=query.latency_constraint_ms,
            subnet_name="synthetic",
            served_accuracy=self.accuracy,
            served_latency_ms=self.service_ms,
        )


def make_trace(n, *, latency_ms=50.0):
    return QueryTrace.from_constraints([0.77] * n, [latency_ms] * n)


def make_engine(num_replicas, *, service_ms=1.0, admission="admit_all", **fault_kwargs):
    engine = ServingEngine(
        [AcceleratorReplica(ConstantServer(service_ms)) for _ in range(num_replicas)],
        admission=admission,
    )
    if fault_kwargs:
        engine.faults = FaultInjector(**fault_kwargs)
    return engine


class TestFaultInjectorValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(crash_mtbf_ms=0.0),
            dict(crash_mtbf_ms=-5.0),
            dict(straggler_mtbf_ms=10.0),  # stragglers without a duration
            dict(straggler_mtbf_ms=10.0, straggler_duration_ms=2.0, straggler_factor=0.5),
            dict(dispatch_failure_prob=1.0),
            dict(dispatch_failure_prob=-0.1),
            dict(max_attempts=0),
            dict(backoff_base_ms=0.0),
            dict(backoff_multiplier=0.9),
            dict(brownout_threshold=0.0),
            dict(brownout_threshold=1.5),
            dict(brownout_threshold=0.5, brownout_accuracy_step=0.0),
            dict(brownout_threshold=0.5, brownout_max_steps=0),
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ValueError):
            FaultInjector(**kwargs)


class TestFaultInjectorUnit:
    def test_reset_replays_identical_fault_schedule(self):
        fi = FaultInjector(
            seed=7,
            crash_mtbf_ms=30.0,
            straggler_mtbf_ms=20.0,
            straggler_duration_ms=5.0,
            straggler_factor=2.0,
        )
        fi.horizon_ms = 100.0

        def sample():
            events = []
            for index in range(3):
                fi.schedule_replica(index, 0.0, events.append)
            return [(e.time_ms, e.kind, e.payload) for e in events]

        first = sample()
        fi.reset()
        fi.horizon_ms = 100.0
        assert sample() == first

    def test_horizon_gates_crash_but_consumes_the_draw(self):
        # Replica 0's crash draw lands past a zero horizon and must not be
        # scheduled — but the draw is still consumed, so replica 1 crashes
        # at the same time as in an ungated injector.
        gated = FaultInjector(seed=3, crash_mtbf_ms=50.0)
        open_ = FaultInjector(seed=3, crash_mtbf_ms=50.0)
        open_.horizon_ms = float("inf")
        reference = []
        open_.schedule_replica(0, 0.0, reference.append)
        open_.schedule_replica(1, 0.0, reference.append)

        gated.horizon_ms = 0.0
        none = []
        gated.schedule_replica(0, 0.0, none.append)
        assert none == []
        gated.horizon_ms = float("inf")
        second = []
        gated.schedule_replica(1, 0.0, second.append)
        assert second[0].time_ms == reference[1].time_ms

    def test_retry_backoff_grows_then_exhausts(self):
        fi = FaultInjector(max_attempts=3, backoff_base_ms=2.0, backoff_multiplier=3.0)
        item = _queued(0, arrival=0.0, deadline_ms=1000.0)
        assert fi.next_retry_ms(item, 10.0) == pytest.approx(12.0)  # base
        assert fi.next_retry_ms(item, 20.0) == pytest.approx(26.0)  # base*mult
        assert fi.next_retry_ms(item, 30.0) is None  # attempts exhausted
        assert fi.num_retries == 2

    def test_retry_refused_past_the_deadline(self):
        fi = FaultInjector(max_attempts=5, backoff_base_ms=4.0)
        item = _queued(0, arrival=0.0, deadline_ms=10.0)
        assert fi.next_retry_ms(item, 8.0) is None  # 8 + 4 >= deadline

    def test_brownout_ladder_up_capped_and_back_down(self):
        fi = FaultInjector(
            brownout_threshold=0.25, brownout_accuracy_step=0.02, brownout_max_steps=3
        )
        fi.update_brownout(0, 4)
        assert (fi.brownout_level, fi.accuracy_relax) == (0, 0.0)
        fi.update_brownout(1, 3)  # pressure 0.25 -> level 1
        assert fi.brownout_level == 1
        assert fi.accuracy_relax == pytest.approx(0.02)
        fi.update_brownout(4, 0)  # total loss -> capped at max_steps
        assert fi.brownout_level == 3
        assert fi.accuracy_relax == pytest.approx(0.06)
        fi.update_brownout(0, 4)  # replacements joined -> back to 0
        assert (fi.brownout_level, fi.accuracy_relax) == (0, 0.0)

    def test_group_coverage(self):
        assert FaultInjector().covers_group(None)
        assert FaultInjector().covers_group("pool")
        scoped = FaultInjector(groups=["pool"])
        assert scoped.covers_group("pool")
        assert not scoped.covers_group("other")
        assert not scoped.covers_group(None)


def _queued(index, *, arrival, deadline_ms):
    from repro.serving.engine import QueuedQuery
    from repro.serving.query import Query

    q = Query(
        index=index,
        accuracy_constraint=0.77,
        latency_constraint_ms=deadline_ms - arrival,
    )
    return QueuedQuery(query=q, arrival_ms=arrival, seq=index, service_estimate_ms=0.0)


class TestEngineFaults:
    def test_sole_replica_crash_fails_and_sheds(self):
        # The crash time is the injector's first exponential draw — predict
        # it from the same seeded stream the injector uses.
        seed, mtbf = 0, 20.0
        crash_ms = float(default_rng(seed).exponential(mtbf))
        n = 30
        arrivals = np.arange(n, dtype=float)
        assert crash_ms < arrivals[-1]
        engine = make_engine(1, seed=seed, crash_mtbf_ms=mtbf, max_attempts=2)
        result = engine.run(make_trace(n), arrivals)

        assert result.num_crashes == 1
        assert len(result.outcomes) + len(result.dropped) == n
        # Every served query completed before the crash; everything after
        # either exhausted its retries ("failed") or found no routable
        # replica on arrival ("shed").
        assert all(o.start_ms + o.service_ms <= crash_ms for o in result.outcomes)
        reasons = result.drop_reasons
        assert reasons.get("failed", 0) > 0
        assert reasons.get("shed", 0) > 0
        shed = [d for d in result.dropped if d.reason == "shed"]
        assert all(d.replica_index == -1 for d in shed)
        assert all(d.arrival_ms > crash_ms for d in shed)

    def test_crash_on_one_replica_retries_onto_the_survivor(self):
        seed, mtbf = 12, 20.0
        rng = default_rng(seed)
        crash0 = float(rng.exponential(mtbf))
        crash1 = float(rng.exponential(mtbf))
        n = 30
        arrivals = np.arange(n, dtype=float)
        assert crash0 < arrivals[-1] < crash1  # only replica 0 dies
        engine = make_engine(
            2, seed=seed, crash_mtbf_ms=mtbf, max_attempts=3, backoff_base_ms=0.5
        )
        result = engine.run(make_trace(n), arrivals)

        assert result.num_crashes == 1
        assert len(result.outcomes) + len(result.dropped) == n
        # The survivor absorbs the stream: with generous deadlines and a
        # retry budget, everything lost in the crash is re-served.
        assert result.drop_reasons.get("shed", 0) == 0
        assert engine.faults.num_retries >= 0
        survivors = {o.replica_index for o in result.outcomes if o.arrival_ms > crash0}
        assert survivors == {1}

    def test_straggler_inflates_latency_and_is_recorded(self):
        seed, mtbf = 2, 10.0
        n = 40
        arrivals = np.arange(n, dtype=float) * 0.5
        kwargs = dict(
            seed=seed,
            straggler_mtbf_ms=mtbf,
            straggler_duration_ms=8.0,
            straggler_factor=4.0,
        )
        healthy = make_engine(1, service_ms=0.4).run(make_trace(n), arrivals)
        engine = make_engine(1, service_ms=0.4, **kwargs)
        engine.recorder = TraceRecorder()
        slowed = engine.run(make_trace(n), arrivals)

        assert len(slowed.outcomes) == len(healthy.outcomes) == n
        assert slowed.num_crashes == 0
        # Straggle intervals scale the simulated service time, so the run
        # takes strictly longer end to end.
        assert slowed.duration_ms > healthy.duration_ms
        kinds = [f.kind for f in slowed.trace.faults]
        assert "straggle" in kinds and "straggle_end" in kinds
        onsets = [f for f in slowed.trace.faults if f.kind == "straggle"]
        assert all(f.detail == pytest.approx(4.0) for f in onsets)

    def test_dispatch_failures_retried_to_completion(self):
        n = 50
        arrivals = np.arange(n, dtype=float)
        engine = make_engine(
            1,
            service_ms=0.3,
            seed=9,
            dispatch_failure_prob=0.3,
            max_attempts=6,
            backoff_base_ms=0.1,
        )
        engine.recorder = TraceRecorder()
        result = engine.run(make_trace(n), arrivals)

        assert engine.faults.num_dispatch_failures > 0
        assert engine.faults.num_retries > 0
        # Transient blips with a generous retry budget lose nothing.
        assert len(result.outcomes) == n
        assert not result.dropped
        recorded = [f for f in result.trace.faults if f.kind == "dispatch_failure"]
        assert len(recorded) == engine.faults.num_dispatch_failures

    def test_brownout_relaxes_the_accuracy_floor_after_a_crash(self):
        seed, mtbf = 12, 20.0
        crash_ms = float(default_rng(seed).exponential(mtbf))
        n = 40
        arrivals = np.arange(n, dtype=float) * 0.8
        assert crash_ms < arrivals[-1]
        step = 0.05
        engine = make_engine(
            2,
            service_ms=0.3,
            seed=seed,
            crash_mtbf_ms=mtbf,
            brownout_threshold=0.5,  # 1 failed / (1+1) hits it exactly
            brownout_accuracy_step=step,
        )
        result = engine.run(make_trace(n), arrivals)

        assert result.num_crashes == 1
        floors = [
            floor
            for replica in engine.replicas
            for floor in replica.server.accuracy_floors
        ]
        assert pytest.approx(0.77) in floors  # pre-crash: nominal floor
        assert min(floors) == pytest.approx(0.77 - step)  # degraded dispatches
        # Outcomes keep the query's nominal constraint — degradation is
        # visible to attainment metrics, not hidden by rewriting the query.
        assert all(
            o.record.accuracy_constraint <= 0.77 + 1e-12 for o in result.outcomes
        )

    def test_reset_with_pending_faults_replays_identically(self):
        n = 40
        arrivals = np.arange(n, dtype=float) * 0.7
        engine = make_engine(
            2,
            seed=11,
            crash_mtbf_ms=15.0,
            straggler_mtbf_ms=10.0,
            straggler_duration_ms=4.0,
            straggler_factor=3.0,
            dispatch_failure_prob=0.1,
            max_attempts=3,
            backoff_base_ms=0.5,
        )
        first = engine.run(make_trace(n), arrivals)
        assert first.num_crashes > 0  # the replay is exercised under faults
        second = engine.run(make_trace(n), arrivals)  # reset=True default
        assert second.outcomes == first.outcomes
        assert second.dropped == first.dropped
        assert second.replica_stats == first.replica_stats
        assert second.duration_ms == first.duration_ms
        assert second.num_crashes == first.num_crashes

    def test_scale_down_racing_a_crash_is_a_deterministic_noop(self):
        # Whichever of retire and crash lands first wins; the loser must
        # no-op without touching counters, queues or the event heap.
        engine = make_engine(2, seed=0, crash_mtbf_ms=1000.0)
        engine.faults.horizon_ms = 0.0
        heap = EventHeap()
        dropped = []

        retired = engine.replicas[0]
        retired.retire(5.0)
        engine._handle_fault(6.0, ("crash", 0), heap, dropped)
        assert engine.faults.num_crashes == 0
        assert not dropped and len(heap) == 0

        # And the mirror race: fault events landing on an already-crashed
        # replica (straggle onset/end, duplicate crash) are inert too.
        crashed = engine.replicas[1]
        crashed.enqueue(_queued(0, arrival=0.0, deadline_ms=100.0))
        engine._handle_fault(7.0, ("crash", 1), heap, dropped)
        assert engine.faults.num_crashes == 1
        state = (crashed.stats.num_dropped, len(dropped), engine.faults.num_crashes)
        engine._handle_fault(8.0, ("crash", 1), heap, dropped)
        engine._handle_fault(8.0, ("straggle", 1, 4.0), heap, dropped)
        engine._handle_recovery(9.0, ("straggle_end", 1), heap, dropped)
        assert crashed.straggle_factor == 1.0
        assert (
            crashed.stats.num_dropped,
            len(dropped),
            engine.faults.num_crashes,
        ) == state


class TestFaultSpec:
    def full_spec(self) -> ScenarioSpec:
        return ScenarioSpec(
            name="faulty",
            supernet_name="ofa_mobilenetv3",
            policy=Policy.STRICT_LATENCY,
            replica_groups=(ReplicaGroupSpec(count=2, name="pool"),),
            workload=WorkloadSpec(num_queries=20),
            arrivals=ArrivalSpec(kind="poisson", rate_per_ms=0.5),
            faults=FaultSpec(
                seed=4,
                crash_mtbf_ms=100.0,
                straggler_mtbf_ms=50.0,
                straggler_duration_ms=5.0,
                straggler_factor=2.0,
                dispatch_failure_prob=0.05,
                retry=RetryPolicy(max_attempts=4, backoff_base_ms=0.5),
                brownout_threshold=0.5,
                brownout_accuracy_step=0.02,
                brownout_max_steps=2,
                groups=("pool",),
            ),
        )

    def test_roundtrip_exact(self):
        spec = self.full_spec()
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec
        assert ScenarioSpec.from_json(spec.to_json()) == spec

    def test_faults_default_to_null(self):
        spec = ScenarioSpec(
            replica_groups=(ReplicaGroupSpec(),),
            workload=WorkloadSpec(num_queries=5),
            arrivals=ArrivalSpec(kind="poisson", rate_per_ms=0.5),
        )
        assert spec.faults is None
        assert spec.to_dict()["faults"] is None
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec

    def test_retry_null_means_default_policy(self):
        payload = self.full_spec().to_dict()
        payload["faults"]["retry"] = None
        assert ScenarioSpec.from_dict(payload).faults.retry == RetryPolicy()

    def test_mapping_coerced_in_constructor(self):
        spec = FaultSpec(retry={"max_attempts": 2})
        assert spec.retry == RetryPolicy(max_attempts=2)

    def test_unknown_fault_group_rejected(self):
        with pytest.raises(ValueError, match="names no replica group"):
            dataclasses.replace(
                self.full_spec(),
                faults=FaultSpec(crash_mtbf_ms=10.0, groups=("nope",)),
            )

    def test_shard_with_faults_rejected(self):
        with pytest.raises(ValueError, match="shard is incompatible"):
            dataclasses.replace(self.full_spec(), shard=True)

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(dispatch_failure_prob=1.0),
            dict(crash_mtbf_ms=-1.0),
            dict(straggler_mtbf_ms=5.0),
            dict(brownout_threshold=2.0),
            dict(retry=RetryPolicy(max_attempts=1), groups=("a", "a")),
        ],
    )
    def test_invalid_fault_spec_rejected(self, kwargs):
        with pytest.raises(ValueError):
            FaultSpec(**kwargs)

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(max_attempts=0),
            dict(backoff_base_ms=0.0),
            dict(backoff_multiplier=0.5),
        ],
    )
    def test_invalid_retry_policy_rejected(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)

    def test_schema_exposes_faults_and_retry(self):
        schema = scenario_schema()
        assert schema["defaults"]["faults"] == FaultSpec().to_dict()
        assert schema["defaults"]["retry"] == RetryPolicy().to_dict()


class TestFaultyPoolScenario:
    """The checked-in self-healing scenario CI serves in cli-smoke."""

    @pytest.fixture(scope="class")
    def result(self):
        spec = ScenarioSpec.from_json(FAULTY_SCENARIO.read_text(encoding="utf-8"))
        return spec, run_scenario(spec)

    def test_self_healing_replaces_crashes(self, result):
        spec, res = result
        assert res.num_crashes > 0
        assert res.autoscale is not None and res.autoscale.num_scale_ups > 0
        # Replacement capacity keeps the pool serving: the overwhelming
        # majority of the stream still lands despite the crashes.
        offered = len(res.outcomes) + len(res.dropped)
        assert offered == spec.workload.num_queries
        assert len(res.outcomes) / offered > 0.9

    def test_fault_free_override_is_quiet(self, result):
        spec, _ = result
        quiet = run_scenario(dataclasses.replace(spec, faults=None))
        assert quiet.num_crashes == 0
        assert "failed" not in quiet.drop_reasons
        assert "shed" not in quiet.drop_reasons


class TestFaultObservability:
    @pytest.fixture(scope="class")
    def traced(self):
        n = 40
        arrivals = np.arange(n, dtype=float)
        engine = make_engine(
            2,
            seed=5,
            crash_mtbf_ms=20.0,
            straggler_mtbf_ms=15.0,
            straggler_duration_ms=4.0,
            straggler_factor=3.0,
            dispatch_failure_prob=0.1,
            max_attempts=2,
            backoff_base_ms=0.5,
        )
        engine.recorder = TraceRecorder()
        result = engine.run(make_trace(n), arrivals)
        assert result.num_crashes > 0
        return result

    def test_summary_reports_drop_reasons_and_downtime(self, traced):
        text = summarize_trace(traced.trace)
        assert "drops by reason:" in text
        assert "faults:" in text
        assert "crashed at" in text and "ms down" in text

    def test_chrome_trace_gains_a_fault_track(self, traced):
        payload = chrome_trace(traced.trace)
        instants = [
            e
            for e in payload["traceEvents"]
            if e.get("ph") == "i" and e.get("cat") == "fault"
        ]
        assert len(instants) == len(traced.trace.faults)
        tids = {e["tid"] for e in instants}
        assert len(tids) == 1  # one dedicated fault track
        names = {
            e["args"]["name"]
            for e in payload["traceEvents"]
            if e.get("ph") == "M" and e.get("name") == "thread_name"
        }
        assert "faults" in names
        summary = summarize_chrome_trace(payload)
        assert "fault instants:" in summary

    def test_validator_accepts_the_fault_trace(self, traced, tmp_path):
        path = tmp_path / "trace.json"
        path.write_text(json.dumps(chrome_trace(traced.trace)), encoding="utf-8")
        proc = subprocess.run(
            [sys.executable, str(VALIDATOR), str(path)],
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "fault instants" in proc.stdout

    def test_validator_rejects_incoherent_faults(self, traced, tmp_path):
        payload = chrome_trace(traced.trace)
        crash = next(
            e
            for e in payload["traceEvents"]
            if e.get("cat") == "fault" and e["name"].startswith("crash")
        )
        replica = crash["args"]["replica_index"]
        payload["traceEvents"].append(
            {
                "ph": "i",
                "s": "g",
                "cat": "fault",
                "name": f"straggle replica {replica}",
                "pid": 1,
                "tid": crash["tid"],
                "ts": crash["ts"] + 1.0,
                "args": {"replica_index": replica},
            }
        )
        path = tmp_path / "bad.json"
        path.write_text(json.dumps(payload), encoding="utf-8")
        proc = subprocess.run(
            [sys.executable, str(VALIDATOR), str(path)],
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 1
        assert "after its crash" in proc.stdout

    def test_validator_exits_2_on_missing_file(self, tmp_path):
        proc = subprocess.run(
            [sys.executable, str(VALIDATOR), str(tmp_path / "nope.json")],
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 2


class TestResilienceFrontier:
    def test_registered(self):
        assert "resilience_frontier" in EXPERIMENTS

    def test_trace_scenario_is_the_resilient_cell(self):
        spec = resilience_frontier.trace_scenario()
        assert spec.faults is not None
        assert spec.autoscaler is not None
        assert spec.autoscaler.min_replicas == spec.replica_groups[0].count

    def test_acceptance_bar_holds(self):
        # run() asserts the acceptance property itself: at the most
        # aggressive crash rate, resilient strictly beats oblivious on
        # goodput and attainment within the bounded cost premium.
        result = resilience_frontier.run(crash_mtbfs=(400.0,))
        oblivious, resilient = result.pair(400.0)
        assert oblivious.num_crashes > 0  # the baseline really got hurt
        assert resilient.scale_ups > 0  # and the healing really ran
        fault_free, _ = result.pair(None)
        assert fault_free.num_crashes == 0
        report = resilience_frontier.report(result)
        assert "Resilience frontier" in report
        json.dumps(resilience_frontier.to_jsonable(result))  # JSON-safe
