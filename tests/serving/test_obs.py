"""Tests for the flight recorder: spec, recording, exporters, CLI, tools.

The property-based identity tests (recording never changes the
simulation) live in ``tests/properties/test_property_obs.py``; this file
covers the declarative wiring (:class:`ObservabilitySpec` on the
scenario), the recorded artifacts (spans, provisioning segments,
autoscaler decision records), every exporter, the ``--trace`` /
``--metrics`` / ``trace summarize`` command line, and
``tools/validate_trace.py``.
"""

from __future__ import annotations

import dataclasses
import json
import subprocess
import sys
import types
from pathlib import Path

import pytest

from repro.cli import main
from repro.core.policies import Policy
from repro.serving import (
    ArrivalSpec,
    AutoscalerSpec,
    ObservabilitySpec,
    ReplicaGroupSpec,
    ScenarioSpec,
    WorkloadSpec,
    run_scenario,
    scenario_schema,
)
from repro.serving.obs import (
    chrome_trace,
    metrics_rows,
    snapshot_rows,
    summarize_chrome_trace,
    summarize_trace,
    write_chrome_trace,
    write_metrics,
)

REPO_ROOT = Path(__file__).resolve().parents[2]
VALIDATOR = REPO_ROOT / "tools" / "validate_trace.py"


def small_spec(**kwargs) -> ScenarioSpec:
    base = dict(
        name="obs-test",
        supernet_name="ofa_mobilenetv3",
        policy=Policy.STRICT_LATENCY,
        replica_groups=(ReplicaGroupSpec(count=2, discipline="edf"),),
        router="jsq",
        admission="drop_expired",
        workload=WorkloadSpec(
            num_queries=40, accuracy_range=None, latency_range_ms=None
        ),
        arrivals=ArrivalSpec(kind="poisson", rate_per_ms=0.5, seed=0),
        seed=0,
    )
    base.update(kwargs)
    return ScenarioSpec(**base)


def autoscaled_spec(**kwargs) -> ScenarioSpec:
    return small_spec(
        replica_groups=(
            ReplicaGroupSpec(
                count=1, discipline="edf", startup_delay_ms=2.0, name="pool"
            ),
        ),
        arrivals=ArrivalSpec(
            kind="time_varying",
            segments=((10.0, 0.2), (10.0, 2.0), (10.0, 0.2)),
            seed=0,
        ),
        workload=WorkloadSpec(
            num_queries=80, accuracy_range=None, latency_range_ms=None
        ),
        autoscaler=AutoscalerSpec(
            policy="reactive",
            control_interval_ms=4.0,
            min_replicas=1,
            max_replicas=4,
            max_queue_per_replica=2.0,
        ),
        **kwargs,
    )


class TestObservabilitySpec:
    def test_round_trips_exactly(self):
        spec = small_spec(
            observability=ObservabilitySpec(
                trace=True, keep_metrics=True, metrics_interval_ms=5.0
            )
        )
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec
        assert ScenarioSpec.from_json(spec.to_json()) == spec

    def test_null_observability_round_trips(self):
        spec = small_spec()
        assert spec.observability is None
        payload = spec.to_dict()
        assert payload["observability"] is None
        assert ScenarioSpec.from_dict(payload) == spec

    def test_older_json_without_the_key_parses(self):
        payload = small_spec().to_dict()
        del payload["observability"]
        assert ScenarioSpec.from_dict(payload) == small_spec()

    def test_all_off_is_rejected(self):
        with pytest.raises(ValueError):
            ObservabilitySpec(trace=False, keep_metrics=False)

    def test_bad_interval_is_rejected(self):
        with pytest.raises(ValueError):
            ObservabilitySpec(metrics_interval_ms=0.0)

    def test_schema_exposes_defaults(self):
        defaults = scenario_schema()["defaults"]
        assert defaults["scenario"]["observability"] is None  # off by default
        assert defaults["observability"] == ObservabilitySpec().to_dict()
        assert set(defaults["observability"]) == {
            "trace", "keep_metrics", "metrics_interval_ms",
        }


class TestRecordedRun:
    def test_off_by_default(self):
        result = run_scenario(small_spec())
        assert result.trace is None
        assert result.metrics == ()

    def test_recording_is_observation_only(self):
        plain = run_scenario(small_spec())
        observed = run_scenario(small_spec(observability=ObservabilitySpec()))
        assert observed.outcomes == plain.outcomes
        assert observed.dropped == plain.dropped
        assert observed.duration_ms == plain.duration_ms

    def test_trace_accounts_for_every_query(self):
        result = run_scenario(small_spec(observability=ObservabilitySpec()))
        trace = result.trace
        assert trace is not None
        assert len(trace.spans) == len(result.outcomes) + len(result.dropped)
        assert trace.num_served == len(result.outcomes)
        assert trace.num_dropped == len(result.dropped)
        assert trace.duration_ms == result.duration_ms
        assert len(trace.replicas) == 2

    def test_autoscaled_recording_is_observation_only(self):
        plain = run_scenario(autoscaled_spec())
        observed = run_scenario(
            autoscaled_spec(observability=ObservabilitySpec(keep_metrics=True))
        )
        assert observed.outcomes == plain.outcomes
        assert observed.dropped == plain.dropped
        assert plain.autoscale is not None
        assert observed.autoscale.events == plain.autoscale.events

    def test_autoscaled_trace_explains_decisions(self):
        result = run_scenario(
            autoscaled_spec(observability=ObservabilitySpec(keep_metrics=True))
        )
        trace = result.trace
        assert trace.decisions, "control ticks must leave decision records"
        assert trace.scaling_events == result.autoscale.events
        by_key = {(d.time_ms, d.group): d for d in trace.decisions}
        for event in trace.scaling_events:
            decision = by_key[(event.time_ms, event.group)]
            assert decision.final_desired == event.to_replicas
            assert decision.action == event.action
            assert decision.policy_desired is not None
            assert decision.snapshot is not None
        # Cold starts leave PROVISIONING segments on the timeline.
        if any(e.action == "scale_up" for e in trace.scaling_events):
            assert trace.provisioning

    def test_keep_metrics_exposes_snapshot_history(self):
        result = run_scenario(
            autoscaled_spec(observability=ObservabilitySpec(keep_metrics=True))
        )
        assert result.metrics
        assert len(result.metrics) == len(result.trace.decisions)

    def test_scaling_events_carry_stage_explanations(self):
        result = run_scenario(autoscaled_spec())
        events = result.autoscale.events
        assert events
        for event in events:
            assert event.policy_desired is not None
            assert event.clamped_desired is not None
            assert event.budget_desired is not None


class TestExporters:
    @pytest.fixture(scope="class")
    def traced(self):
        return run_scenario(
            autoscaled_spec(observability=ObservabilitySpec(keep_metrics=True))
        )

    def test_chrome_trace_structure(self, traced):
        payload = chrome_trace(traced.trace)
        events = payload["traceEvents"]
        threads = [
            e for e in events if e["ph"] == "M" and e["name"] == "thread_name"
        ]
        assert len(threads) == len(traced.trace.replicas) + 1  # + autoscaler
        opens = [e for e in events if e["ph"] == "b"]
        closes = [e for e in events if e["ph"] == "e"]
        assert len(opens) == len(closes) == len(traced.trace.spans)
        instants = [e for e in events if e["ph"] == "i"]
        assert len(instants) == len(traced.trace.scaling_events)
        explained = [e for e in instants if "decision" in e["args"]]
        assert explained, "scaling instants must carry decision explanations"
        for instant in explained:
            decision = instant["args"]["decision"]
            assert {"policy_desired", "clamped_desired", "budget_desired",
                    "final_desired", "action", "snapshot"} <= set(decision)
        json.dumps(payload)  # must be JSON-serializable end to end

    def test_trace_file_passes_validator(self, traced, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome_trace(str(path), traced.trace)
        proc = subprocess.run(
            [sys.executable, str(VALIDATOR), str(path)],
            capture_output=True, text=True,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "trace OK" in proc.stdout

    def test_validator_rejects_unbalanced_spans(self, traced, tmp_path):
        payload = chrome_trace(traced.trace)
        payload["traceEvents"] = [
            e for e in payload["traceEvents"] if e["ph"] != "e"
        ]
        path = tmp_path / "broken.json"
        path.write_text(json.dumps(payload))
        proc = subprocess.run(
            [sys.executable, str(VALIDATOR), str(path)],
            capture_output=True, text=True,
        )
        assert proc.returncode == 1
        assert "INVALID" in proc.stdout

    def test_metrics_rows_cover_the_run(self, traced):
        rows = metrics_rows(traced.trace, interval_ms=5.0)
        assert rows
        assert rows[-1]["time_ms"] == pytest.approx(traced.duration_ms)
        for row in rows:
            assert row["queue_depth"] >= 0.0
            assert 0.0 <= row["drop_rate"] <= 1.0
        total_arrivals = sum(
            row["arrival_rate_per_ms"] * 5.0 for row in rows[:-1]
        )
        assert total_arrivals <= len(traced.trace.spans)

    def test_snapshot_rows_mirror_history(self, traced):
        rows = snapshot_rows(traced.metrics)
        assert len(rows) == len(traced.metrics)
        assert rows[0]["time_ms"] == traced.metrics[0].time_ms

    def test_write_metrics_csv_and_json(self, traced, tmp_path):
        rows = snapshot_rows(traced.metrics)
        csv_path = tmp_path / "metrics.csv"
        json_path = tmp_path / "metrics.json"
        write_metrics(str(csv_path), rows)
        write_metrics(str(json_path), rows)
        header = csv_path.read_text().splitlines()[0]
        assert header.split(",")[0] == "time_ms"
        assert len(csv_path.read_text().splitlines()) == len(rows) + 1
        assert json.loads(json_path.read_text()) == [
            {k: v for k, v in row.items()} for row in rows
        ]

    def test_text_summaries(self, traced):
        text = summarize_trace(traced.trace)
        assert f"{traced.trace.num_served} served" in text
        assert "scaling events" in text
        exported = summarize_chrome_trace(chrome_trace(traced.trace))
        assert "query spans" in exported
        assert "scaling instants" in exported


class TestCli:
    @pytest.fixture()
    def scenario_file(self, tmp_path):
        path = tmp_path / "scenario.json"
        path.write_text(autoscaled_spec().to_json())
        return path

    def test_serve_trace_and_metrics(self, scenario_file, tmp_path, capsys):
        trace_path = tmp_path / "trace.json"
        metrics_path = tmp_path / "metrics.csv"
        assert main([
            "serve", "--scenario", str(scenario_file),
            "--trace", str(trace_path), "--metrics", str(metrics_path),
        ]) == 0
        out = capsys.readouterr().out
        assert str(trace_path) in out and str(metrics_path) in out
        payload = json.loads(trace_path.read_text())
        assert payload["traceEvents"]
        assert metrics_path.read_text().startswith("time_ms")

    def test_serve_trace_matches_declarative_observability(
        self, scenario_file, tmp_path, capsys
    ):
        """The CLI flag and the spec field drive the same recorded run."""
        trace_path = tmp_path / "trace.json"
        assert main([
            "serve", "--scenario", str(scenario_file), "--trace", str(trace_path),
        ]) == 0
        capsys.readouterr()
        declarative = run_scenario(
            autoscaled_spec(observability=ObservabilitySpec())
        )
        exported = json.loads(trace_path.read_text())
        assert exported == chrome_trace(declarative.trace)

    def test_serve_unwritable_trace_fails_cleanly(self, scenario_file, tmp_path, capsys):
        bad = tmp_path / "no" / "dir" / "trace.json"
        assert main([
            "serve", "--scenario", str(scenario_file), "--trace", str(bad),
        ]) == 2
        assert "cannot write" in capsys.readouterr().err

    def test_trace_summarize(self, scenario_file, tmp_path, capsys):
        trace_path = tmp_path / "trace.json"
        main(["serve", "--scenario", str(scenario_file), "--trace", str(trace_path)])
        capsys.readouterr()
        assert main(["trace", "summarize", str(trace_path)]) == 0
        out = capsys.readouterr().out
        assert "query spans" in out and "tracks" in out

    def test_trace_summarize_rejects_garbage(self, tmp_path, capsys):
        path = tmp_path / "not-a-trace.json"
        path.write_text("{}")
        assert main(["trace", "summarize", str(path)]) == 2
        assert "invalid trace" in capsys.readouterr().err

    def _register_dummy(self, monkeypatch, module):
        from repro.experiments import registry

        experiment = registry.Experiment("obs_dummy", "dummy", module)
        monkeypatch.setitem(registry.EXPERIMENTS, "obs_dummy", experiment)

    def test_run_trace_via_experiment_hook(self, monkeypatch, tmp_path, capsys):
        module = types.ModuleType("obs_dummy")
        module.run = lambda: "ok"
        module.report = lambda result: "dummy report"
        module.trace_scenario = lambda: autoscaled_spec()
        self._register_dummy(monkeypatch, module)
        trace_path = tmp_path / "trace.json"
        assert main(["run", "obs_dummy", "--trace", str(trace_path)]) == 0
        assert json.loads(trace_path.read_text())["traceEvents"]

    def test_run_trace_without_hook_fails_cleanly(self, monkeypatch, tmp_path, capsys):
        module = types.ModuleType("obs_dummy")
        module.run = lambda: "ok"
        module.report = lambda result: "dummy report"
        self._register_dummy(monkeypatch, module)
        assert main(["run", "obs_dummy", "--trace", str(tmp_path / "t.json")]) == 2
        assert "trace_scenario" in capsys.readouterr().err


class TestExperimentHooks:
    def test_frontier_trace_scenarios_are_valid_specs(self):
        from repro.experiments import frontier_autoscale, frontier_predictive

        for module in (frontier_autoscale, frontier_predictive):
            spec = module.trace_scenario(num_queries=50)
            assert isinstance(spec, ScenarioSpec)
            assert spec.autoscaler is not None
            assert ScenarioSpec.from_json(spec.to_json()) == spec

    def test_frontier_points_carry_scaling_events(self):
        from repro.experiments.frontier_autoscale import FrontierPoint

        result = run_scenario(autoscaled_spec())
        point = FrontierPoint(
            label="cell", kind="reactive", slo_attainment=1.0,
            replica_seconds=1.0, mean_replicas=1.0, peak_replicas=1,
            drop_rate=0.0, mean_accuracy=0.8,
            scaling_events=result.autoscale.events,
        )
        payload = dataclasses.asdict(point)
        assert payload["scaling_events"]
        first = payload["scaling_events"][0]
        assert {"group", "policy_desired", "clamped_desired",
                "budget_desired"} <= set(first)
        json.dumps(payload)
