"""Tests for predictive + tier-aware autoscaling and the cold-start model.

Four layers: the PROVISIONING replica lifecycle (cold scale-ups join
routing late, scale-downs cancel pending provisions, ``reset()`` discards
them), the predictive policy (forecast math, warm-up holds, smoothing
state), the tier-aware policy (grow cheapest within budget / shed most
expensive), and the declarative path (spec validation, round-trips, the
``frontier_predictive`` acceptance bar).  The record-identity guarantee —
``startup_delay_ms=0`` with predictive/tier features disabled behaves
exactly like the pre-cold-start control plane — is property-tested with
hypothesis over random bursty traces.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.metrics import QueryRecord
from repro.core.policies import Policy
from repro.serving import (
    ArrivalSpec,
    AutoscaleController,
    AutoscalerSpec,
    ReplicaGroupSpec,
    ScenarioSpec,
    SushiStack,
    SushiStackConfig,
    WorkloadSpec,
    run_scenario,
)
from repro.serving.autoscale import (
    GroupStatus,
    MetricsSnapshot,
    PredictivePolicy,
    ReactivePolicy,
    ScaledGroup,
    TelemetryBus,
    TierAwarePolicy,
    make_policy,
)
from repro.serving.engine import AcceleratorReplica, ServingEngine
from repro.serving.engine.events import EventKind
from repro.serving.query import QueryTrace

SUPERNET = "ofa_mobilenetv3"


class ConstantServer:
    """Synthetic backend with a fixed service time."""

    def __init__(self, service_ms: float = 10.0, accuracy: float = 0.78) -> None:
        self.service_ms = service_ms
        self.accuracy = accuracy

    def serve_query(self, query, *, effective_latency_constraint_ms=None):
        return QueryRecord(
            query_index=query.index,
            accuracy_constraint=query.accuracy_constraint,
            latency_constraint_ms=query.latency_constraint_ms,
            subnet_name="synthetic",
            served_accuracy=self.accuracy,
            served_latency_ms=self.service_ms,
        )


def make_trace(n, *, latency_ms=30.0):
    return QueryTrace.from_constraints([0.77] * n, [latency_ms] * n)


def bursty_arrivals(n, *, quiet_ms=300.0, quiet_rate=0.02, burst_ms=150.0,
                    burst_rate=0.5, seed=0):
    rng = np.random.default_rng(seed)
    times, t = [], 0.0
    period = quiet_ms + burst_ms
    while len(times) < n:
        rate = quiet_rate if (t % period) < quiet_ms else burst_rate
        t += rng.exponential(1.0 / rate)
        times.append(t)
    return np.asarray(times[:n])


def snapshot(**overrides) -> MetricsSnapshot:
    base = dict(
        time_ms=1000.0,
        window_ms=100.0,
        num_active=2,
        num_draining=0,
        queue_depth=0,
        arrival_rate_per_ms=0.1,
        drop_rate=0.0,
        utilization=0.5,
        p95_wait_ms=0.0,
        mean_service_ms=10.0,
    )
    base.update(overrides)
    return MetricsSnapshot(**base)


def delayed_engine(*, startup_delay_ms, policy="reactive", seed_offset=0, **ctl_kwargs):
    defaults = dict(
        control_interval_ms=25.0,
        min_replicas=1,
        max_replicas=6,
        startup_delay_ms=startup_delay_ms,
        replica_factory=lambda pos: AcceleratorReplica(
            ConstantServer(), discipline="edf"
        ),
    )
    defaults.update(ctl_kwargs)
    ctl = AutoscaleController(policy, **defaults)
    return ServingEngine(
        [AcceleratorReplica(ConstantServer(), discipline="edf")],
        router="jsq",
        admission="drop_expired",
        autoscaler=ctl,
    )


# -------------------------------------------------------- telemetry forecast
class TestForecastTelemetry:
    def test_rate_slope_detects_ramp(self):
        bus = TelemetryBus(window_ms=100.0)
        # 2 arrivals in the older half, 8 in the recent half.
        for t in (110.0, 130.0):
            bus.on_arrival(t)
        for t in np.linspace(151.0, 195.0, 8):
            bus.on_arrival(float(t))
        snap = bus.snapshot(200.0, num_active=1)
        assert snap.arrival_rate_slope_per_ms2 == pytest.approx(
            (8 - 2) / 50.0 / 50.0
        )
        # Extrapolation: rate + slope x (window/2 + horizon).
        assert snap.forecast_rate_per_ms(100.0) == pytest.approx(
            snap.arrival_rate_per_ms
            + snap.arrival_rate_slope_per_ms2 * (50.0 + 100.0)
        )

    def test_flat_rate_has_zero_slope(self):
        bus = TelemetryBus(window_ms=100.0)
        for t in np.arange(100.0, 200.0, 10.0):
            bus.on_arrival(float(t))
        snap = bus.snapshot(200.0, num_active=1)
        assert snap.arrival_rate_slope_per_ms2 == pytest.approx(0.0)

    def test_forecast_floor_at_zero(self):
        snap = snapshot(arrival_rate_per_ms=0.01, arrival_rate_slope_per_ms2=-1.0)
        assert snap.forecast_rate_per_ms(100.0) == 0.0

    def test_num_provisioning_passthrough(self):
        bus = TelemetryBus(window_ms=50.0)
        snap = bus.snapshot(100.0, num_active=2, num_provisioning=3)
        assert snap.num_provisioning == 3
        assert snap.num_incoming == 5


# -------------------------------------------------------- predictive policy
class TestPredictivePolicy:
    def test_sizes_for_forecast_demand(self):
        policy = PredictivePolicy(
            horizon_ms=100.0, target_utilization=0.5, smoothing=1.0
        )
        # rate 0.1/ms rising at 5e-4/ms²: forecast at window/2 + horizon
        # = 150ms ahead -> 0.175/ms; x 10ms service = 1.75 busy replicas
        # -> 4 replicas at 50% target.
        desired, reason = policy.desired_replicas(
            snapshot(arrival_rate_slope_per_ms2=5e-4)
        )
        assert desired == 4
        assert "forecast" in reason

    def test_backlog_correction_adds_demand(self):
        lazy = PredictivePolicy(
            horizon_ms=100.0, target_utilization=0.5, smoothing=1.0
        )
        base, _ = lazy.desired_replicas(snapshot())
        backlogged = PredictivePolicy(
            horizon_ms=100.0, target_utilization=0.5, smoothing=1.0
        )
        # 20 queued x 10ms / 100ms horizon = 2 extra busy replicas -> +4.
        more, _ = backlogged.desired_replicas(snapshot(queue_depth=20))
        assert more == base + 4

    def test_holds_without_service_evidence(self):
        policy = PredictivePolicy(horizon_ms=50.0)
        desired, reason = policy.desired_replicas(
            snapshot(mean_service_ms=0.0, num_provisioning=1)
        )
        assert desired == 3  # num_incoming
        assert "evidence" in reason

    def test_holds_while_warming_up(self):
        policy = PredictivePolicy(horizon_ms=500.0)
        desired, reason = policy.desired_replicas(snapshot(time_ms=100.0))
        assert desired == 2
        assert "warming" in reason

    def test_deadband_holds(self):
        policy = PredictivePolicy(
            horizon_ms=0.0, target_utilization=0.5, deadband=0.2, smoothing=1.0
        )
        # demand = 0.1 x 10 = 1.0 over 2 incoming -> implied 0.5 == target.
        desired, reason = policy.desired_replicas(snapshot())
        assert desired == 2
        assert "within deadband" in reason

    def test_smoothing_damps_and_reset_clears(self):
        policy = PredictivePolicy(
            horizon_ms=0.0, target_utilization=0.5, deadband=0.0, smoothing=0.5
        )
        first, _ = policy.desired_replicas(snapshot())
        # A spike is averaged with the remembered demand, not taken raw.
        spiky = snapshot(arrival_rate_per_ms=0.4)
        smoothed, _ = policy.desired_replicas(spiky)
        policy.reset()
        policy_fresh = PredictivePolicy(
            horizon_ms=0.0, target_utilization=0.5, deadband=0.0, smoothing=0.5
        )
        raw, _ = policy_fresh.desired_replicas(spiky)
        assert first == 2
        assert smoothed < raw
        # After reset the EMA restarts: identical input, identical output.
        assert policy.desired_replicas(spiky)[0] == raw

    def test_controller_injects_horizon_and_window(self):
        ctl = AutoscaleController(
            "predictive",
            control_interval_ms=10.0,
            startup_delay_ms=90.0,
            replica_factory=lambda pos: AcceleratorReplica(ConstantServer()),
        )
        assert ctl.policy.horizon_ms == pytest.approx(100.0)
        # Default window spans two horizons, not two control intervals.
        assert ctl.bus.window_ms == pytest.approx(200.0)

    def test_explicit_horizon_kept(self):
        ctl = AutoscaleController(
            PredictivePolicy(horizon_ms=42.0),
            control_interval_ms=10.0,
            startup_delay_ms=90.0,
            replica_factory=lambda pos: AcceleratorReplica(ConstantServer()),
        )
        assert ctl.policy.horizon_ms == 42.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(horizon_ms=-1.0),
            dict(target_utilization=0.0),
            dict(deadband=1.0),
            dict(smoothing=0.0),
            dict(smoothing=1.5),
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ValueError):
            PredictivePolicy(**kwargs)


# -------------------------------------------------------- tier-aware policy
def group_status(name, *, cost_weight=1.0, num_active=1, num_provisioning=0,
                 min_replicas=1, max_replicas=6, **kwargs):
    return GroupStatus(
        name=name,
        cost_weight=cost_weight,
        startup_delay_ms=kwargs.get("startup_delay_ms", 0.0),
        min_replicas=min_replicas,
        max_replicas=max_replicas,
        num_active=num_active,
        num_provisioning=num_provisioning,
        num_draining=kwargs.get("num_draining", 0),
        queue_depth=kwargs.get("queue_depth", 0),
    )


class TestTierAwarePolicy:
    def make_groups(self):
        return (
            group_status("big", cost_weight=2.0, num_active=1, max_replicas=4),
            group_status("small", cost_weight=1.0, num_active=2, max_replicas=6),
        )

    def test_grows_cheapest_tier_on_distress(self):
        policy = TierAwarePolicy()
        desired, reason = policy.desired_by_group(
            snapshot(drop_rate=0.5, num_active=3), self.make_groups()
        )
        assert desired == {"big": 1, "small": 3}
        assert "small" in reason

    def test_budget_steers_growth_to_fitting_tier(self):
        policy = TierAwarePolicy()
        groups = (
            group_status("cheap", cost_weight=1.0, num_active=6, max_replicas=6),
            group_status("pricey", cost_weight=2.0, num_active=1, max_replicas=4),
        )
        # cheap is at max; pricey fits the budget (8 + 2 <= 10).
        desired, _ = policy.desired_by_group(
            snapshot(drop_rate=0.5, num_active=7), groups, cost_budget=10.0
        )
        assert desired == {"cheap": 6, "pricey": 2}
        # With a tight budget nothing fits: hold, and say why.
        held, reason = policy.desired_by_group(
            snapshot(drop_rate=0.5, num_active=7), groups, cost_budget=8.0
        )
        assert held == {"cheap": 6, "pricey": 1}
        assert "budget" in reason

    def test_sheds_most_expensive_tier_when_idle(self):
        policy = TierAwarePolicy(min_utilization=0.4)
        groups = (
            group_status("big", cost_weight=2.0, num_active=2),
            group_status("small", cost_weight=1.0, num_active=2),
        )
        desired, reason = policy.desired_by_group(
            snapshot(utilization=0.1, num_active=4), groups
        )
        assert desired == {"big": 1, "small": 2}
        assert "big" in reason

    def test_provisioning_counts_as_incoming(self):
        policy = TierAwarePolicy()
        groups = (
            group_status("big", cost_weight=2.0, num_active=1),
            group_status(
                "small", cost_weight=1.0, num_active=1, num_provisioning=2
            ),
        )
        desired, _ = policy.desired_by_group(
            snapshot(drop_rate=0.5, num_active=2, num_provisioning=2), groups
        )
        assert desired["small"] == 4  # 1 active + 2 provisioning + 1 new

    def test_single_group_policies_reject_multi(self):
        with pytest.raises(ValueError, match="tier_aware"):
            ReactivePolicy().desired_by_group(snapshot(), self.make_groups())

    def test_desired_replicas_needs_groups(self):
        with pytest.raises(ValueError, match="per-group"):
            TierAwarePolicy().desired_replicas(snapshot())

    def test_make_policy_knows_new_names(self):
        assert make_policy("predictive").name == "predictive"
        assert make_policy("tier_aware").name == "tier_aware"


# ----------------------------------------------- provisioning in the engine
class TestProvisioningLifecycle:
    def test_cold_replica_joins_after_delay(self):
        engine = delayed_engine(startup_delay_ms=60.0)
        trace = make_trace(400)
        result = engine.run(trace, bursty_arrivals(400))
        report = result.autoscale
        assert report.num_scale_ups > 0
        # Scale-up replicas exist and some of them served after warming.
        grown = engine.replicas[1:]
        assert grown and any(r.stats.num_served > 0 for r in grown)
        # Nothing is served by a replica before its provisioning window
        # ends: every grown replica's first dispatch is at/after ready time.
        for replica in grown:
            first_start = min(
                (o.start_ms for o in result.outcomes
                 if o.replica_index == replica.index),
                default=None,
            )
            if first_start is not None:
                assert first_start >= replica.activated_ms + 60.0 - 1e-9

    def test_provisioning_time_is_paid_for(self):
        engine = delayed_engine(startup_delay_ms=60.0)
        trace = make_trace(400)
        result = engine.run(trace, bursty_arrivals(400))
        zero = delayed_engine(startup_delay_ms=0.0)
        base = zero.run(trace, bursty_arrivals(400))
        # Cold starts cost replica-seconds without serving: the delayed run
        # cannot be cheaper than serving the same decisions instantly would
        # make it better-attaining.
        assert result.replica_seconds > 0
        for replica in engine.replicas[1:]:
            assert replica.stats.active_ms >= 0.0
        # And the delay hurts attainment relative to instant scale-up.
        assert result.slo_attainment <= base.slo_attainment

    def test_scale_down_cancels_provisioning_first(self):
        # One provisioning replica, then force a scale-down decision while
        # it is still cold: the pending replica retires unserved, and its
        # stale PROVISIONING event is ignored.
        ctl = AutoscaleController(
            "reactive",
            control_interval_ms=10.0,
            min_replicas=1,
            max_replicas=4,
            startup_delay_ms=1000.0,  # never finishes within the run
            replica_factory=lambda pos: AcceleratorReplica(
                ConstantServer(), discipline="edf"
            ),
        )
        engine = ServingEngine(
            [AcceleratorReplica(ConstantServer(), discipline="edf")],
            router="jsq",
            admission="drop_expired",
            autoscaler=ctl,
        )
        # A short burst triggers a scale-up; the following quiet triggers
        # the scale-down while the clone still provisions.
        trace = make_trace(60, latency_ms=1e9)
        arrivals = np.concatenate(
            [np.linspace(1.0, 30.0, 30), np.linspace(300.0, 800.0, 30)]
        )
        result = engine.run(trace, arrivals)
        assert result.autoscale.num_scale_ups > 0
        assert result.autoscale.num_scale_downs > 0
        cancelled = [
            r
            for r in engine.replicas[1:]
            if r.is_retired and r.stats.num_served == 0
        ]
        assert cancelled, "the cold replica should be cancelled unserved"
        for replica in cancelled:
            assert not replica.provisioning
            # It still cost money from request to cancellation.
            assert replica.retired_at_ms > replica.activated_ms
        # Every query was still served exactly once.
        assert result.num_served == 60

    def test_reset_discards_pending_provisions(self):
        engine = delayed_engine(startup_delay_ms=500.0)
        trace = make_trace(300)
        arrivals = bursty_arrivals(300)
        first = engine.run(trace, arrivals)
        assert any(r.provisioning for r in engine.replicas) or len(
            engine.replicas
        ) > 1
        engine.reset()
        assert len(engine.replicas) == 1
        assert not any(r.provisioning for r in engine.replicas)
        second = engine.run(trace, arrivals)
        assert first.records == second.records
        assert first.dropped == second.dropped
        assert first.replica_seconds == second.replica_seconds
        assert first.autoscale.events == second.autoscale.events

    def test_provisioning_event_has_priority_before_control(self):
        assert EventKind.COMPLETION < EventKind.ARRIVAL
        assert EventKind.ARRIVAL < EventKind.PROVISIONING
        assert EventKind.PROVISIONING < EventKind.CONTROL

    @settings(max_examples=15, deadline=None)
    @given(
        n=st.integers(50, 200),
        quiet_rate=st.floats(0.01, 0.05),
        burst_rate=st.floats(0.2, 0.6),
        interval=st.floats(5.0, 60.0),
        seed=st.integers(0, 100),
    )
    def test_zero_delay_is_record_identical_to_pr3_path(
        self, n, quiet_rate, burst_rate, interval, seed
    ):
        """startup_delay_ms=0 must not perturb the classic control plane.

        The legacy construction (no startup_delay argument at all) and an
        explicit ScaledGroup with zero delay run the same trace to
        bit-identical records, events and costs — and no replica ever
        enters the provisioning state.
        """
        trace = make_trace(n)
        arrivals = bursty_arrivals(
            n, quiet_rate=quiet_rate, burst_rate=burst_rate, seed=seed
        )

        def engine(ctl):
            return ServingEngine(
                [AcceleratorReplica(ConstantServer(), discipline="edf")],
                router="jsq",
                admission="drop_expired",
                autoscaler=ctl,
            )

        legacy = engine(
            AutoscaleController(
                "reactive",
                control_interval_ms=interval,
                min_replicas=1,
                max_replicas=6,
                replica_factory=lambda pos: AcceleratorReplica(
                    ConstantServer(), discipline="edf"
                ),
            )
        )
        explicit = engine(
            AutoscaleController(
                "reactive",
                control_interval_ms=interval,
                groups=(
                    ScaledGroup(
                        name=None,
                        cost_weight=1.0,
                        startup_delay_ms=0.0,
                        min_replicas=1,
                        max_replicas=6,
                        replica_factory=lambda pos: AcceleratorReplica(
                            ConstantServer(), discipline="edf"
                        ),
                    ),
                ),
            )
        )
        a = legacy.run(trace, arrivals)
        b = explicit.run(trace, arrivals)
        assert a.records == b.records
        assert a.dropped == b.dropped
        assert a.replica_seconds == b.replica_seconds
        assert a.autoscale.events == b.autoscale.events
        assert not any(r.provisioning for r in legacy.replicas)
        assert not any(r.provisioning for r in explicit.replicas)
        assert all(r.provision_ready_ms is None for r in explicit.replicas)


# ----------------------------------------------------- tier-aware lifecycle
class TestTierEngine:
    def build(self, *, cost_budget=None, small_delay=0.0):
        big = ScaledGroup(
            name="big",
            cost_weight=2.0,
            min_replicas=1,
            max_replicas=4,
            replica_factory=lambda pos: AcceleratorReplica(
                ConstantServer(8.0), discipline="edf", cost_weight=2.0
            ),
        )
        small = ScaledGroup(
            name="small",
            cost_weight=1.0,
            min_replicas=1,
            max_replicas=6,
            startup_delay_ms=small_delay,
            replica_factory=lambda pos: AcceleratorReplica(
                ConstantServer(12.0), discipline="edf", cost_weight=1.0
            ),
        )
        ctl = AutoscaleController(
            "tier_aware",
            control_interval_ms=20.0,
            down_cooldown_ms=40.0,
            groups=(big, small),
            cost_budget=cost_budget,
        )
        engine = ServingEngine(
            [
                AcceleratorReplica(ConstantServer(8.0), discipline="edf", cost_weight=2.0),
                AcceleratorReplica(ConstantServer(12.0), discipline="edf", cost_weight=1.0),
            ],
            router="jsq",
            admission="drop_expired",
            autoscaler=ctl,
            scalable_indices={"big": (0,), "small": (1,)},
        )
        return engine

    def test_grows_cheap_tier_and_respects_budget(self):
        engine = self.build(cost_budget=8.0)
        trace = make_trace(500, latency_ms=40.0)
        result = engine.run(trace, bursty_arrivals(500))
        events = result.autoscale.events
        ups = [e for e in events if e.action == "scale_up"]
        assert ups and all(e.group == "small" for e in ups)
        # weighted incoming never exceeds the budget: big 1x2 + small <= 6
        # = 8; the big tier can never grow (2 more would break the budget).
        assert not any(
            e.group == "big" and e.action == "scale_up" for e in events
        )
        assert result.weighted_replica_seconds > result.replica_seconds * 0  # defined
        assert result.autoscale.cost_budget == 8.0
        groups = dict(result.autoscale.final_by_group)
        assert set(groups) == {"big", "small"}

    def test_weighted_cost_accounts_tier_prices(self):
        engine = self.build()
        trace = make_trace(300, latency_ms=40.0)
        result = engine.run(trace, bursty_arrivals(300))
        by_weight = {}
        for s in result.replica_stats:
            by_weight.setdefault(s.cost_weight, 0.0)
            by_weight[s.cost_weight] += s.active_ms
        expected = sum(w * ms for w, ms in by_weight.items()) / 1000.0
        assert result.weighted_replica_seconds == pytest.approx(expected)
        assert result.weighted_replica_seconds > result.replica_seconds

    def test_repeat_run_identical(self):
        engine = self.build(cost_budget=8.0, small_delay=30.0)
        trace = make_trace(400, latency_ms=40.0)
        arrivals = bursty_arrivals(400)
        first = engine.run(trace, arrivals)
        second = engine.run(trace, arrivals)
        assert first.records == second.records
        assert first.autoscale.events == second.autoscale.events
        assert first.weighted_replica_seconds == second.weighted_replica_seconds

    def test_multi_group_needs_membership_mapping(self):
        ctl = AutoscaleController(
            "tier_aware",
            control_interval_ms=20.0,
            groups=(
                ScaledGroup(name="a", replica_factory=lambda pos: None),
                ScaledGroup(name="b", replica_factory=lambda pos: None),
            ),
        )
        with pytest.raises(ValueError, match="mapping"):
            ServingEngine(
                [AcceleratorReplica(ConstantServer())],
                autoscaler=ctl,
            )

    def test_membership_mapping_validated(self):
        def ctl():
            return AutoscaleController(
                "tier_aware",
                control_interval_ms=20.0,
                groups=(
                    ScaledGroup(name="a", replica_factory=lambda pos: None),
                    ScaledGroup(name="b", replica_factory=lambda pos: None),
                ),
            )

        replicas = lambda: [  # noqa: E731
            AcceleratorReplica(ConstantServer()),
            AcceleratorReplica(ConstantServer()),
        ]
        with pytest.raises(ValueError, match="misses"):
            ServingEngine(
                replicas(), autoscaler=ctl(), scalable_indices={"a": (0,)}
            )
        with pytest.raises(ValueError, match="unknown groups"):
            ServingEngine(
                replicas(),
                autoscaler=ctl(),
                scalable_indices={"a": (0,), "b": (1,), "c": ()},
            )
        with pytest.raises(ValueError, match="two scaled groups"):
            ServingEngine(
                replicas(),
                autoscaler=ctl(),
                scalable_indices={"a": (0,), "b": (0,)},
            )


# ------------------------------------------------------- declarative layer
@pytest.fixture(scope="module")
def stack():
    return SushiStack(
        SushiStackConfig(
            supernet_name=SUPERNET, policy=Policy.STRICT_LATENCY, seed=0
        )
    )


@pytest.fixture(scope="module")
def stack_cache(stack):
    return {stack.config: stack}


class TestSpecFields:
    def test_group_fields_roundtrip(self):
        import json

        group = ReplicaGroupSpec(
            count=2, cost_weight=2.5, startup_delay_ms=12.0, name="tier"
        )
        back = ReplicaGroupSpec.from_dict(json.loads(json.dumps(group.to_dict())))
        assert back == group

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(cost_weight=0.0),
            dict(cost_weight=-1.0),
            dict(startup_delay_ms=-1.0),
        ],
    )
    def test_invalid_group_fields_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ReplicaGroupSpec(**kwargs)

    @pytest.mark.parametrize(
        "spec",
        [
            AutoscalerSpec(policy="predictive", horizon_ms=40.0),
            AutoscalerSpec(policy="predictive"),
            AutoscalerSpec(
                policy="tier_aware",
                groups=("big", "small"),
                cost_budget=8.0,
            ),
            AutoscalerSpec(policy="tier_aware", group="pool"),
        ],
    )
    def test_autoscaler_roundtrip(self, spec):
        import json

        back = AutoscalerSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert back == spec

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(policy="reactive", horizon_ms=10.0),
            dict(policy="predictive", horizon_ms=-1.0),
            dict(policy="reactive", groups=("a",)),
            dict(policy="tier_aware", groups=("a", "a")),
            dict(policy="tier_aware", group="a", groups=("b",)),
            dict(policy="reactive", cost_budget=4.0),
            dict(policy="tier_aware", cost_budget=0.0),
        ],
    )
    def test_invalid_autoscaler_rejected(self, kwargs):
        with pytest.raises(ValueError):
            AutoscalerSpec(**kwargs)

    def test_pr3_shape_json_parses_to_defaults(self):
        """A spec dict written before these fields existed still parses —
        and equals the spec with the new fields at their defaults."""
        modern = ScenarioSpec(
            replica_groups=(ReplicaGroupSpec(name="pool"),),
            autoscaler=AutoscalerSpec(group="pool"),
        )
        data = modern.to_dict()
        for key in ("cost_weight", "startup_delay_ms"):
            del data["replica_groups"][0][key]
        for key in ("groups", "cost_budget", "horizon_ms"):
            del data["autoscaler"][key]
        assert ScenarioSpec.from_dict(data) == modern

    def test_scenario_validates_tier_group_names(self):
        groups = (
            ReplicaGroupSpec(count=1, name="big"),
            ReplicaGroupSpec(count=1, name="small"),
        )
        spec = ScenarioSpec(
            replica_groups=groups,
            autoscaler=AutoscalerSpec(
                policy="tier_aware", groups=("big", "small")
            ),
        )
        assert [g.name for g in spec.scaled_groups()] == ["big", "small"]
        with pytest.raises(ValueError, match="names no replica group"):
            ScenarioSpec(
                replica_groups=groups,
                autoscaler=AutoscalerSpec(policy="tier_aware", groups=("huge",)),
            )
        with pytest.raises(ValueError, match="scaled_groups"):
            spec.scaled_group()


class TestFacadeTiersAndDelay:
    def scenario(self, autoscaler, *, groups, n=160):
        return ScenarioSpec(
            name="tiers",
            supernet_name=SUPERNET,
            policy=Policy.STRICT_LATENCY,
            replica_groups=groups,
            router="jsq",
            admission="drop_expired",
            workload=WorkloadSpec(
                num_queries=n, accuracy_range=None, latency_range_ms=None
            ),
            arrivals=ArrivalSpec(
                kind="time_varying", segments=((100.0, 0.5), (40.0, 6.0)), seed=0
            ),
            autoscaler=autoscaler,
            seed=0,
        )

    def test_tier_scenario_runs_with_budget_and_delay(self, stack_cache):
        groups = (
            ReplicaGroupSpec(
                count=1,
                discipline="edf",
                name="large",
                cost_weight=2.0,
                startup_delay_ms=5.0,
            ),
            ReplicaGroupSpec(
                count=1,
                discipline="edf",
                name="small",
                pb_kb=432.0,
                cost_weight=1.0,
                startup_delay_ms=2.0,
            ),
        )
        spec = self.scenario(
            AutoscalerSpec(
                policy="tier_aware",
                control_interval_ms=8.0,
                max_replicas=4,
                groups=("large", "small"),
                cost_budget=7.0,
            ),
            groups=groups,
        )
        result = run_scenario(spec, stack_cache=stack_cache)
        report = result.autoscale
        assert report is not None
        assert report.policy == "tier_aware"
        assert report.cost_budget == 7.0
        assert dict(report.final_by_group).keys() == {"large", "small"}
        assert result.num_offered == 160
        assert result.weighted_replica_seconds >= result.replica_seconds
        # Scale-ups favored the cheap tier under the budget.
        ups = [e for e in report.events if e.action == "scale_up"]
        assert all(e.group in ("large", "small") for e in ups)

    def test_predictive_scenario_with_cold_start(self, stack_cache):
        groups = (
            ReplicaGroupSpec(
                count=1, discipline="edf", name="pool", startup_delay_ms=4.0
            ),
        )
        spec = self.scenario(
            AutoscalerSpec(
                policy="predictive", control_interval_ms=2.0, max_replicas=5
            ),
            groups=groups,
            n=250,
        )
        result = run_scenario(spec, stack_cache=stack_cache)
        assert result.autoscale.num_scale_ups > 0
        assert result.num_offered == 250
        # Repeat runs are identical through the facade too.
        again = run_scenario(spec, stack_cache=stack_cache)
        assert result.records == again.records
        assert result.autoscale.events == again.autoscale.events


# ------------------------------------------------- the acceptance frontier
class TestPredictiveFrontier:
    @pytest.fixture(scope="class")
    def frontier(self, stack):
        from repro.experiments import frontier_predictive

        return frontier_predictive.run(
            stack=stack,
            num_queries=600,
            startup_delay_units=(12.0,),
            static_counts=(1,),
            max_replicas=6,
            seed=0,
        )

    def test_predictive_beats_reactive_under_cold_start(self, frontier):
        """The ISSUE acceptance bar: with nonzero startup delay the
        predictive policy attains at least the reactive policy's SLO at
        equal or lower replica-seconds cost."""
        delay_ms = frontier.startup_delays_ms[0]
        assert delay_ms > 0
        reactive, predictive = frontier.pair(delay_ms)
        assert predictive.slo_attainment >= reactive.slo_attainment
        assert predictive.replica_seconds <= reactive.replica_seconds

    def test_autoscalers_beat_single_static(self, frontier):
        static = frontier.point("static-1")
        for p in frontier.points:
            if p.kind != "static":
                assert p.slo_attainment > static.slo_attainment

    def test_points_record_delay_and_weighted_cost(self, frontier):
        for p in frontier.points:
            if p.kind != "static":
                assert p.startup_delay_ms == frontier.startup_delays_ms[0]
            assert p.weighted_replica_seconds == pytest.approx(
                p.replica_seconds
            )  # weight-1.0 pool

    def test_report_and_json_dump(self, frontier):
        import json

        from repro.experiments import frontier_predictive

        text = frontier_predictive.report(frontier)
        assert "cold start" in text
        dump = frontier_predictive.to_jsonable(frontier)
        json.dumps(dump)
        assert dump["startup_delays_ms"] == list(frontier.startup_delays_ms)
        assert {p["label"] for p in dump["points"]} == {
            p.label for p in frontier.points
        }
