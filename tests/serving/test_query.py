"""Unit tests for Query and QueryTrace."""

import pytest

from repro.serving.query import Query, QueryTrace


class TestQuery:
    def test_valid_query(self):
        q = Query(index=0, accuracy_constraint=0.78, latency_constraint_ms=10.0)
        assert q.accuracy_constraint == 0.78

    def test_invalid_accuracy_rejected(self):
        with pytest.raises(ValueError):
            Query(index=0, accuracy_constraint=1.5, latency_constraint_ms=10.0)
        with pytest.raises(ValueError):
            Query(index=0, accuracy_constraint=0.0, latency_constraint_ms=10.0)

    def test_invalid_latency_rejected(self):
        with pytest.raises(ValueError):
            Query(index=0, accuracy_constraint=0.78, latency_constraint_ms=0.0)

    def test_negative_arrival_rejected(self):
        with pytest.raises(ValueError):
            Query(index=0, accuracy_constraint=0.78, latency_constraint_ms=1.0, arrival_ms=-1)


class TestQueryTrace:
    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError):
            QueryTrace(queries=())

    def test_from_constraints(self):
        trace = QueryTrace.from_constraints([0.76, 0.79], [5.0, 8.0])
        assert len(trace) == 2
        assert trace[1].latency_constraint_ms == 8.0
        assert trace.accuracy_constraints == [0.76, 0.79]
        assert trace.latency_constraints_ms == [5.0, 8.0]

    def test_from_constraints_length_mismatch(self):
        with pytest.raises(ValueError):
            QueryTrace.from_constraints([0.76], [5.0, 8.0])

    def test_iteration_order(self):
        trace = QueryTrace.from_constraints([0.76, 0.77, 0.78], [5.0, 6.0, 7.0])
        assert [q.index for q in trace] == [0, 1, 2]
