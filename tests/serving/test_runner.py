"""Unit tests for the experiment runner and system comparison."""

import pytest

from repro.core.policies import Policy
from repro.serving.runner import ExperimentRunner, StreamResult, compare_systems


@pytest.fixture(scope="module")
def runner():
    return ExperimentRunner("ofa_mobilenetv3", policy=Policy.STRICT_ACCURACY, seed=0)


@pytest.fixture(scope="module")
def trace(runner):
    return runner.default_workload(num_queries=40)


class TestExperimentRunner:
    def test_default_workload_spans_feasible_ranges(self, runner, trace):
        accs = trace.accuracy_constraints
        lats = trace.latency_constraints_ms
        assert min(accs) >= float(runner.sushi.table.accuracies.min()) - 1e-9
        assert max(lats) <= float(runner.sushi.table.latencies_ms.max()) + 1e-9

    def test_run_produces_three_systems(self, runner, trace):
        results = runner.run(trace)
        assert set(results) == {"no_sushi", "sushi_wo_sched", "sushi"}
        for stream in results.values():
            assert stream.metrics.num_queries == len(trace)

    def test_compare_headline_directions(self, runner, trace):
        _, summary = runner.compare(trace)
        # SUSHI should not be slower than No-SUSHI and should save energy.
        assert summary.latency_improvement_vs_no_sushi_percent >= -0.5
        assert summary.energy_saving_vs_no_sushi_percent > 0
        assert 0.0 <= summary.sushi_cache_hit_ratio <= 1.0

    def test_run_is_deterministic(self, runner, trace):
        first = runner.run(trace)["sushi"].metrics
        second = runner.run(trace)["sushi"].metrics
        assert first.mean_latency_ms == pytest.approx(second.mean_latency_ms)

    def test_compare_systems_requires_all(self, runner, trace):
        results = runner.run(trace)
        del results["sushi"]
        with pytest.raises(ValueError):
            compare_systems(results)

    def test_stream_result_from_records(self, runner, trace):
        records = runner.no_sushi.serve(trace)
        result = StreamResult.from_records("no_sushi", records)
        assert result.system == "no_sushi"
        assert result.metrics.num_queries == len(records)

    def test_strict_latency_improves_accuracy(self):
        runner = ExperimentRunner("ofa_mobilenetv3", policy=Policy.STRICT_LATENCY, seed=1)
        trace = runner.default_workload(num_queries=60)
        _, summary = runner.compare(trace)
        # Under a hard latency constraint, cache awareness lets SUSHI serve
        # equal-or-higher accuracy than the state-unaware baselines.
        assert summary.accuracy_improvement_points >= -1e-6
