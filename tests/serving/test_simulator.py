"""Unit tests for the open-loop serving simulator."""

import numpy as np
import pytest

from repro.core.metrics import QueryRecord
from repro.serving.query import QueryTrace
from repro.serving.simulator import OpenLoopSimulator, poisson_arrivals


def constant_service_fn(service_ms: float):
    """A fake serving system with a fixed service time and accuracy."""

    def _serve(trace: QueryTrace):
        return [
            QueryRecord(
                query_index=q.index,
                accuracy_constraint=q.accuracy_constraint,
                latency_constraint_ms=q.latency_constraint_ms,
                subnet_name="X",
                served_accuracy=0.78,
                served_latency_ms=service_ms,
            )
            for q in trace
        ]

    return _serve


@pytest.fixture
def trace():
    return QueryTrace.from_constraints([0.77] * 50, [10.0] * 50)


class TestPoissonArrivals:
    def test_monotone_increasing(self):
        arrivals = poisson_arrivals(100, 0.5, rng=np.random.default_rng(0))
        assert np.all(np.diff(arrivals) > 0)

    def test_mean_gap_matches_rate(self):
        arrivals = poisson_arrivals(5000, 2.0, rng=np.random.default_rng(1))
        assert np.mean(np.diff(arrivals)) == pytest.approx(0.5, rel=0.1)

    def test_invalid_arguments(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            poisson_arrivals(0, 1.0, rng=rng)
        with pytest.raises(ValueError):
            poisson_arrivals(10, 0.0, rng=rng)


class TestOpenLoopSimulator:
    def test_fifo_no_overlap(self, trace):
        sim = OpenLoopSimulator(constant_service_fn(2.0))
        result = sim.run(trace, arrival_rate_per_ms=5.0, seed=0)
        starts = [o.start_ms for o in result.outcomes]
        completions = [o.completion_ms for o in result.outcomes]
        for prev_end, nxt_start in zip(completions, starts[1:]):
            assert nxt_start >= prev_end - 1e-9

    def test_light_load_no_queueing(self, trace):
        sim = OpenLoopSimulator(constant_service_fn(1.0))
        result = sim.run(trace, arrival_rate_per_ms=0.01, seed=0)
        # With a mean inter-arrival gap 100x the service time, queueing is
        # negligible (a rare back-to-back arrival may add a small delay).
        assert result.mean_queueing_ms < 0.1
        assert result.slo_attainment == 1.0

    def test_overload_degrades_slo(self, trace):
        sim = OpenLoopSimulator(constant_service_fn(5.0))
        light = sim.run(trace, arrival_rate_per_ms=0.05, seed=0)
        heavy = sim.run(trace, arrival_rate_per_ms=2.0, seed=0)
        assert heavy.offered_load > 1.0 > light.offered_load
        assert heavy.slo_attainment < light.slo_attainment
        assert heavy.mean_response_ms > light.mean_response_ms

    def test_response_decomposition(self, trace):
        sim = OpenLoopSimulator(constant_service_fn(2.0))
        result = sim.run(trace, arrival_rate_per_ms=1.0, seed=3)
        for o in result.outcomes:
            assert o.response_ms == pytest.approx(o.queueing_ms + o.service_ms)

    def test_record_count_mismatch_rejected(self, trace):
        sim = OpenLoopSimulator(lambda t: constant_service_fn(1.0)(t)[:-1])
        with pytest.raises(ValueError):
            sim.run(trace, arrival_rate_per_ms=1.0)

    def test_load_sweep_keys(self, trace):
        sim = OpenLoopSimulator(constant_service_fn(1.0))
        sweep = sim.load_sweep(trace, (0.1, 1.0), seed=0)
        assert set(sweep) == {0.1, 1.0}

    def test_deterministic_given_seed(self, trace):
        sim = OpenLoopSimulator(constant_service_fn(1.5))
        a = sim.run(trace, arrival_rate_per_ms=0.5, seed=9)
        b = sim.run(trace, arrival_rate_per_ms=0.5, seed=9)
        assert a.mean_response_ms == b.mean_response_ms


class TestSimulationResultAccounting:
    """Satellite: offered load, achieved throughput and drops are exposed."""

    def test_throughput_and_drop_fields(self, trace):
        sim = OpenLoopSimulator(constant_service_fn(2.0))
        result = sim.run(trace, arrival_rate_per_ms=1.0, seed=0)
        assert result.offered_load == pytest.approx(2.0)
        assert result.num_dropped == 0
        assert result.drop_rate == 0.0
        assert result.num_served == len(trace)
        makespan = max(o.completion_ms for o in result.outcomes)
        assert result.achieved_throughput_per_ms == pytest.approx(
            len(trace) / makespan
        )
        # Without drops, attainment is the served-query mean as before.
        assert result.slo_attainment == pytest.approx(
            np.mean([o.meets_slo for o in result.outcomes])
        )

    def test_per_replica_stats_exposed(self, trace):
        sim = OpenLoopSimulator(constant_service_fn(2.0))
        result = sim.run(trace, arrival_rate_per_ms=1.0, seed=0)
        assert len(result.replica_stats) == 1
        assert result.replica_stats[0].num_served == len(trace)

    def test_constructor_requires_exactly_one_mode(self):
        with pytest.raises(ValueError):
            OpenLoopSimulator()
        with pytest.raises(ValueError):
            OpenLoopSimulator(
                constant_service_fn(1.0), engine=object()  # type: ignore[arg-type]
            )


class TestDispatchTimeMode:
    @pytest.fixture(scope="class")
    def stack(self):
        from repro.core.policies import Policy
        from repro.serving.stack import SushiStack, SushiStackConfig

        return SushiStack(
            SushiStackConfig(
                supernet_name="ofa_mobilenetv3",
                policy=Policy.STRICT_LATENCY,
                seed=0,
            )
        )

    def test_from_stack_runs_and_is_deterministic(self, stack):
        spec_trace = QueryTrace.from_constraints([0.77] * 40, [1.0] * 40)
        sim = OpenLoopSimulator.from_stack(stack, num_replicas=2, router="jsq")
        a = sim.run(spec_trace, arrival_rate_per_ms=2.0, seed=1)
        b = sim.run(spec_trace, arrival_rate_per_ms=2.0, seed=1)
        assert [o.start_ms for o in a.outcomes] == [o.start_ms for o in b.outcomes]
        assert a.num_served == 40

    def test_drop_expired_sheds_under_overload(self, stack):
        tight = QueryTrace.from_constraints([0.77] * 60, [0.4] * 60)
        sim = OpenLoopSimulator.from_stack(stack, admission="drop_expired")
        result = sim.run(tight, arrival_rate_per_ms=10.0, seed=0)
        assert result.num_dropped > 0
        assert result.num_served + result.num_dropped == 60
