"""Serialization and validation tests for the declarative scenario specs.

The contract under test: ``Spec.from_dict(spec.to_dict()) == spec`` with
JSON-safe dicts only, across every backend kind, arrival kind and workload
pattern — so any scenario can live in a version-controlled ``.json`` file
and run via ``python -m repro serve``.
"""

from __future__ import annotations

import dataclasses
import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.accelerator.platforms import ANALYTIC_DEFAULT, ZCU104
from repro.core.policies import Policy
from repro.serving.spec import (
    ARRIVAL_KINDS,
    BACKEND_KINDS,
    ArrivalSpec,
    AutoscalerSpec,
    ReplicaGroupSpec,
    ScenarioSpec,
)
from repro.serving.workload import PATTERNS, WorkloadSpec


def roundtrip(spec):
    """Serialize through actual JSON text, not just dicts."""
    return type(spec).from_dict(json.loads(json.dumps(spec.to_dict())))


def make_arrivals(kind: str) -> ArrivalSpec:
    if kind == "time_varying":
        return ArrivalSpec(kind=kind, segments=((10.0, 0.5), (5.0, 2.0)), seed=3)
    if kind == "trace":
        return ArrivalSpec(
            kind=kind, events=(0.5, 1.25, 3.0), rate_scale=2.0, limit=3, seed=3
        )
    return ArrivalSpec(kind=kind, rate_per_ms=0.75, seed=3)


class TestArrivalSpec:
    @pytest.mark.parametrize("kind", ARRIVAL_KINDS)
    def test_roundtrip(self, kind):
        spec = make_arrivals(kind)
        assert roundtrip(spec) == spec

    def test_poisson_matches_engine_arrivals(self):
        from repro.serving.engine import poisson_arrivals

        spec = ArrivalSpec(kind="poisson", rate_per_ms=0.4, seed=11)
        expected = poisson_arrivals(
            50, 0.4, rng=np.random.default_rng(11)
        )
        np.testing.assert_array_equal(spec.generate(50), expected)

    def test_deterministic_evenly_spaced(self):
        spec = ArrivalSpec(kind="deterministic", rate_per_ms=2.0)
        arrivals = spec.generate(4)
        np.testing.assert_allclose(arrivals, [0.5, 1.0, 1.5, 2.0])

    def test_time_varying_monotone_and_rate_tracks_segments(self):
        # 100 ms at 0.1/ms then 100 ms at 5/ms, cycling: arrivals must be
        # strictly increasing and dense segments must hold more arrivals.
        spec = ArrivalSpec(
            kind="time_varying", segments=((100.0, 0.1), (100.0, 5.0)), seed=0
        )
        arrivals = spec.generate(400)
        assert np.all(np.diff(arrivals) > 0)
        phase = (arrivals % 200.0) >= 100.0  # True inside the dense segment
        assert phase.sum() > 3 * (~phase).sum()
        assert spec.nominal_rate_per_ms() == pytest.approx((10.0 + 500.0) / 200.0)

    def test_time_varying_deterministic_given_seed(self):
        spec = make_arrivals("time_varying")
        np.testing.assert_array_equal(spec.generate(64), spec.generate(64))

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(kind="warp"),
            dict(kind="poisson"),  # missing rate
            dict(kind="poisson", rate_per_ms=-1.0),
            dict(kind="poisson", rate_per_ms=1.0, segments=((1.0, 1.0),)),
            dict(kind="time_varying"),  # missing segments
            dict(kind="time_varying", segments=((0.0, 1.0),)),
            dict(kind="time_varying", segments=((1.0, -2.0),)),
            dict(kind="time_varying", rate_per_ms=1.0, segments=((1.0, 1.0),)),
            dict(kind="trace"),  # needs path or events
            dict(kind="trace", path="x.csv", events=(1.0,)),  # not both
            dict(kind="trace", rate_per_ms=1.0, events=(1.0,)),
            dict(kind="trace", events=(2.0, 1.0)),  # decreasing
            dict(kind="trace", events=(-1.0, 1.0)),  # negative
            dict(kind="trace", events=(1.0,), rate_scale=0.0),
            dict(kind="trace", events=(1.0,), time_scale=-1.0),
            dict(kind="trace", events=(1.0,), limit=0),
            dict(kind="poisson", rate_per_ms=1.0, rate_scale=2.0),
            dict(kind="poisson", rate_per_ms=1.0, events=(1.0,)),
            dict(kind="poisson", rate_per_ms=1.0, path="x.csv"),
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ArrivalSpec(**kwargs)

    def test_trace_replays_inline_events_exactly(self):
        spec = ArrivalSpec(kind="trace", events=(0.5, 1.0, 2.5, 7.0))
        np.testing.assert_array_equal(spec.generate(4), [0.5, 1.0, 2.5, 7.0])
        np.testing.assert_array_equal(spec.generate(2), [0.5, 1.0])
        assert spec.nominal_rate_per_ms() == pytest.approx(4.0 / 7.0)
        with pytest.raises(ValueError):
            spec.generate(5)  # log exhausted

    def test_trace_scaling_and_limit(self):
        spec = ArrivalSpec(
            kind="trace", events=(1.0, 2.0, 4.0, 8.0), rate_scale=2.0, limit=3
        )
        np.testing.assert_array_equal(spec.generate(3), [0.5, 1.0, 2.0])
        # time_scale converts units (e.g. s -> ms), rate_scale divides.
        lifted = ArrivalSpec(
            kind="trace", events=(1.0, 2.0), time_scale=1000.0
        )
        np.testing.assert_array_equal(lifted.generate(2), [1000.0, 2000.0])


class TestReplicaGroupSpec:
    @pytest.mark.parametrize("kind", BACKEND_KINDS)
    def test_roundtrip_all_backend_kinds(self, kind):
        spec = ReplicaGroupSpec(
            count=3,
            kind=kind,
            platform="zcu104",
            pb_kb=256.0,
            policy=Policy.STRICT_LATENCY,
            cache_update_period=8,
            discipline="edf",
            subnet_name="C" if kind == "static_subnet" else None,
            name="tier",
        )
        assert roundtrip(spec) == spec

    def test_inline_platform_roundtrip(self):
        spec = ReplicaGroupSpec(platform=ZCU104.scaled(bandwidth_gbps=40.0))
        back = roundtrip(spec)
        assert back == spec
        assert back.platform.off_chip_bandwidth_gbps == 40.0

    def test_resolved_platform_applies_pb_override(self):
        spec = ReplicaGroupSpec(platform="analytic-default", pb_kb=432.0)
        assert spec.resolved_platform() == ANALYTIC_DEFAULT.with_pb(432.0)
        assert ReplicaGroupSpec().resolved_platform() == ANALYTIC_DEFAULT

    def test_policy_accepts_string(self):
        assert ReplicaGroupSpec(policy="strict_latency").policy is Policy.STRICT_LATENCY

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(count=0),
            dict(kind="gpu"),
            dict(platform="not-a-platform"),
            dict(pb_kb=-1.0),
            dict(cache_update_period=0),
            dict(subnet_name="C"),  # only valid for static_subnet
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ReplicaGroupSpec(**kwargs)


class TestScenarioSpec:
    @pytest.mark.parametrize("pattern", PATTERNS)
    def test_roundtrip_all_workload_patterns(self, pattern):
        spec = ScenarioSpec(
            name="rt",
            workload=WorkloadSpec(num_queries=32, pattern=pattern),
        )
        assert roundtrip(spec) == spec

    def test_roundtrip_heterogeneous_scenario(self):
        spec = ScenarioSpec(
            name="hetero",
            supernet_name="ofa_mobilenetv3",
            policy=Policy.STRICT_LATENCY,
            replica_groups=(
                ReplicaGroupSpec(count=2, pb_kb=1728.0, name="large", discipline="edf"),
                ReplicaGroupSpec(count=2, pb_kb=432.0, name="small", discipline="edf"),
            ),
            router="jsq",
            admission="drop_expired",
            workload=WorkloadSpec(
                num_queries=64, accuracy_range=None, latency_range_ms=None
            ),
            arrivals=ArrivalSpec(
                kind="time_varying", segments=((60.0, 1.0), (40.0, 6.0))
            ),
            seed=7,
        )
        assert roundtrip(spec) == spec
        assert spec.num_replicas == 4

    def test_replica_groups_normalized_to_tuple(self):
        spec = ScenarioSpec(replica_groups=[ReplicaGroupSpec(count=2)])
        assert isinstance(spec.replica_groups, tuple)

    def test_group_level_overrides_inherit_scenario_defaults(self):
        scenario = ScenarioSpec(
            policy=Policy.STRICT_LATENCY,
            cache_update_period=6,
            seed=9,
            replica_groups=(
                ReplicaGroupSpec(),
                ReplicaGroupSpec(
                    policy=Policy.STRICT_ACCURACY, cache_update_period=2, seed=1
                ),
            ),
        )
        inherit, override = scenario.replica_groups
        assert scenario.group_policy(inherit) is Policy.STRICT_LATENCY
        assert scenario.group_cache_update_period(inherit) == 6
        assert scenario.group_seed(inherit) == 9
        assert scenario.group_policy(override) is Policy.STRICT_ACCURACY
        assert scenario.group_cache_update_period(override) == 2
        assert scenario.group_seed(override) == 1

    def test_override_dotted_paths(self):
        spec = ScenarioSpec(
            replica_groups=(ReplicaGroupSpec(count=1), ReplicaGroupSpec(count=1)),
        )
        assert spec.override("num_queries", 42).num_queries == 42
        assert spec.override("replica_groups.1.count", 5).replica_groups[1].count == 5
        assert (
            spec.override("arrivals.rate_per_ms", 0.25).arrivals.rate_per_ms == 0.25
        )
        assert spec.override("workload.pattern", "bursty").workload.pattern == "bursty"

    def test_override_many_is_atomic(self):
        """Interdependent overrides validate once, after all are applied:
        switching the scaling policy to ``scheduled`` requires its schedule
        to land in the same step (either alone is invalid)."""
        spec = ScenarioSpec(autoscaler=AutoscalerSpec(policy="reactive"))
        with pytest.raises(ValueError):
            spec.override("autoscaler.policy", "scheduled")
        with pytest.raises(ValueError):
            spec.override("autoscaler.schedule", [[0.0, 1]])
        switched = spec.override_many(
            [
                ("autoscaler.policy", "scheduled"),
                ("autoscaler.schedule", [[0.0, 1], [50.0, 3]]),
                ("autoscaler.period_ms", 120.0),
            ]
        )
        assert switched.autoscaler.policy == "scheduled"
        assert switched.autoscaler.schedule == ((0.0, 1), (50.0, 3))

    def test_override_unknown_field_rejected(self):
        with pytest.raises(KeyError):
            ScenarioSpec().override("no_such_field", 1)
        with pytest.raises(KeyError):
            ScenarioSpec().override("arrivals.flux", 1)

    def test_invalid_rejected(self):
        with pytest.raises(ValueError):
            ScenarioSpec(replica_groups=())
        with pytest.raises(ValueError):
            ScenarioSpec(num_queries=0)
        with pytest.raises(ValueError):
            ScenarioSpec(cache_update_period=0)

    def test_duplicate_group_names_rejected_at_parse(self):
        # Ambiguous group references must fail when the spec is built, not
        # deep inside engine construction.
        with pytest.raises(ValueError, match="unique"):
            ScenarioSpec(
                replica_groups=(
                    ReplicaGroupSpec(name="pool"),
                    ReplicaGroupSpec(name="pool"),
                )
            )
        # Several unnamed groups stay legal.
        ScenarioSpec(
            replica_groups=(ReplicaGroupSpec(), ReplicaGroupSpec(pb_kb=432.0))
        )

    def test_json_text_roundtrip(self):
        spec = ScenarioSpec(name="files")
        assert ScenarioSpec.from_json(spec.to_json()) == spec


# ----------------------------------------------------------- property-based
arrival_specs = st.one_of(
    st.builds(
        ArrivalSpec,
        kind=st.sampled_from(["poisson", "deterministic"]),
        rate_per_ms=st.floats(0.01, 10.0, allow_nan=False),
        seed=st.integers(0, 2**16),
    ),
    st.builds(
        ArrivalSpec,
        kind=st.just("time_varying"),
        segments=st.lists(
            st.tuples(st.floats(0.5, 100.0), st.floats(0.01, 10.0)),
            min_size=1,
            max_size=4,
        ).map(tuple),
        seed=st.integers(0, 2**16),
    ),
)

replica_groups = st.builds(
    ReplicaGroupSpec,
    count=st.integers(1, 8),
    kind=st.sampled_from([k for k in BACKEND_KINDS if k != "static_subnet"]),
    platform=st.sampled_from(["analytic-default", "zcu104", "alveo-u50"]),
    pb_kb=st.one_of(st.none(), st.floats(0.0, 1024.0)),
    policy=st.one_of(st.none(), st.sampled_from(list(Policy))),
    cache_update_period=st.one_of(st.none(), st.integers(1, 16)),
    seed=st.one_of(st.none(), st.integers(0, 100)),
    discipline=st.sampled_from(["fifo", "edf", "priority_by_slack"]),
    cost_weight=st.floats(0.1, 8.0, allow_nan=False),
    startup_delay_ms=st.floats(0.0, 100.0, allow_nan=False),
    name=st.one_of(st.none(), st.text(min_size=1, max_size=8)),
)

autoscaler_specs = st.one_of(
    st.builds(
        AutoscalerSpec,
        policy=st.just("reactive"),
        control_interval_ms=st.floats(1.0, 100.0),
        window_ms=st.one_of(st.none(), st.floats(1.0, 200.0)),
        min_replicas=st.integers(1, 2),
        max_replicas=st.integers(2, 8),
        up_cooldown_ms=st.floats(0.0, 50.0),
        down_cooldown_ms=st.floats(0.0, 50.0),
        max_drop_rate=st.floats(0.0, 0.5),
        max_queue_per_replica=st.floats(0.5, 16.0),
        min_utilization=st.floats(0.0, 1.0),
        scale_up_step=st.integers(1, 3),
        scale_down_step=st.integers(1, 3),
    ),
    st.builds(
        AutoscalerSpec,
        policy=st.just("target_utilization"),
        control_interval_ms=st.floats(1.0, 100.0),
        target_utilization=st.floats(0.1, 1.0),
        deadband=st.floats(0.0, 0.3),
    ),
    st.builds(
        AutoscalerSpec,
        policy=st.just("predictive"),
        control_interval_ms=st.floats(1.0, 100.0),
        horizon_ms=st.one_of(st.none(), st.floats(0.0, 200.0)),
        target_utilization=st.floats(0.1, 1.0),
        deadband=st.floats(0.0, 0.3),
    ),
    st.builds(
        AutoscalerSpec,
        policy=st.just("tier_aware"),
        control_interval_ms=st.floats(1.0, 100.0),
        cost_budget=st.one_of(st.none(), st.floats(1.0, 64.0)),
        max_drop_rate=st.floats(0.0, 0.5),
        max_queue_per_replica=st.floats(0.5, 16.0),
        min_utilization=st.floats(0.0, 1.0),
    ),
    st.builds(
        AutoscalerSpec,
        policy=st.just("scheduled"),
        control_interval_ms=st.floats(1.0, 100.0),
        schedule=st.lists(
            st.tuples(st.floats(0.0, 100.0), st.integers(1, 6)),
            min_size=1,
            max_size=4,
            unique_by=lambda e: e[0],
        ).map(lambda entries: tuple(sorted(entries))),
    ),
)

scenario_specs = st.builds(
    ScenarioSpec,
    name=st.text(min_size=1, max_size=12),
    supernet_name=st.sampled_from(["ofa_resnet50", "ofa_mobilenetv3"]),
    policy=st.sampled_from(list(Policy)),
    cache_update_period=st.integers(1, 16),
    replica_groups=st.lists(replica_groups, min_size=1, max_size=3).map(
        # Non-None group names must be unique within a scenario; suffix
        # duplicates the strategy happens to draw.
        lambda groups: tuple(
            g
            if g.name is None
            else dataclasses.replace(g, name=f"{g.name}~{i}")
            for i, g in enumerate(groups)
        )
    ),
    router=st.sampled_from(["round_robin", "jsq", "least_loaded"]),
    admission=st.sampled_from(["admit_all", "drop_expired"]),
    workload=st.builds(
        WorkloadSpec,
        num_queries=st.integers(1, 500),
        accuracy_range=st.one_of(st.none(), st.just((0.7, 0.8))),
        latency_range_ms=st.one_of(st.none(), st.just((1.0, 20.0))),
        pattern=st.sampled_from(PATTERNS),
    ),
    arrivals=arrival_specs,
    autoscaler=st.one_of(st.none(), autoscaler_specs),
    num_queries=st.one_of(st.none(), st.integers(1, 500)),
    dispatch_time_scheduling=st.booleans(),
    seed=st.integers(0, 2**16),
)


@settings(max_examples=60, deadline=None)
@given(spec=scenario_specs)
def test_property_scenario_roundtrip(spec):
    """Any valid ScenarioSpec survives a to_dict → JSON → from_dict cycle."""
    assert roundtrip(spec) == spec
