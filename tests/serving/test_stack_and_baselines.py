"""Unit/integration tests for the SUSHI stack and baseline servers."""

import pytest

from repro.accelerator.analytic_model import SushiAccelModel
from repro.accelerator.platforms import ANALYTIC_DEFAULT
from repro.core.policies import Policy
from repro.serving.baselines import NoSushiServer, StateUnawareCachingServer
from repro.serving.query import QueryTrace
from repro.serving.stack import SushiStack, SushiStackConfig
from repro.serving.workload import WorkloadGenerator, WorkloadSpec
from repro.supernet.accuracy import AccuracyModel


@pytest.fixture(scope="module")
def trace():
    spec = WorkloadSpec(
        num_queries=40, accuracy_range=(0.758, 0.803), latency_range_ms=(0.3, 2.0)
    )
    return WorkloadGenerator(spec, seed=11).generate()


@pytest.fixture(scope="module")
def stack():
    return SushiStack(
        SushiStackConfig(
            supernet_name="ofa_mobilenetv3", policy=Policy.STRICT_ACCURACY,
            cache_update_period=4, seed=0,
        )
    )


class TestSushiStack:
    def test_serve_produces_record_per_query(self, stack, trace):
        stack.reset()
        records = stack.serve(trace)
        assert len(records) == len(trace)

    def test_records_have_positive_latency(self, stack, trace):
        stack.reset()
        for r in stack.serve(trace):
            assert r.served_latency_ms > 0
            assert 0.0 <= r.cache_hit_ratio <= 1.0

    def test_strict_accuracy_always_met(self, stack, trace):
        stack.reset()
        records = stack.serve(trace)
        assert all(r.served_accuracy >= r.accuracy_constraint - 1e-9 for r in records)

    def test_cache_hit_ratio_grows_with_serving(self, stack, trace):
        stack.reset()
        stack.serve(trace)
        assert stack.cache_hit_ratio > 0.0

    def test_reset_restores_fresh_state(self, stack, trace):
        stack.reset()
        first = stack.serve(trace)
        stack.reset()
        second = stack.serve(trace)
        assert [r.subnet_name for r in first] == [r.subnet_name for r in second]
        assert [r.served_latency_ms for r in first] == pytest.approx(
            [r.served_latency_ms for r in second]
        )

    def test_pb_capacity_respected(self, stack):
        assert stack.pb.occupancy_bytes <= stack.pb.capacity_bytes

    def test_window_memo_is_bit_identical_to_unmemoized_path(self, stack, trace):
        """The per-caching-window memo in ``_enact`` must change nothing.

        The reference clone has its memo flushed before every query, forcing
        the full per-query accelerator evaluation; records *and* PB byte
        statistics must match the memoized clone exactly.
        """
        memoized = stack.clone(seed=7)
        records_memo = memoized.serve(trace)

        reference = stack.clone(seed=7)
        records_ref = []
        for query in trace:
            reference._window_memo.clear()
            reference._window_memo_gen = -1
            records_ref.append(reference.serve_query(query))

        assert records_memo == records_ref
        for field in (
            "queries_served",
            "hit_bytes_total",
            "served_weight_bytes_total",
            "cache_loads",
            "cache_load_bytes_total",
        ):
            assert getattr(memoized.pb.stats, field) == getattr(
                reference.pb.stats, field
            ), field

    def test_window_memo_reuses_accelerator_evaluations(self, stack, trace):
        """Within one caching window each distinct SubNet is evaluated once."""

        class CountingAccel:
            def __init__(self, inner):
                self.inner = inner
                self.calls = 0

            def subnet_breakdown(self, *args, **kwargs):
                self.calls += 1
                return self.inner.subnet_breakdown(*args, **kwargs)

            def __getattr__(self, name):
                return getattr(self.inner, name)

        clone = stack.clone(seed=7)
        proxy = CountingAccel(clone.accel)
        clone.accel = proxy
        clone.serve(trace)
        # At most (distinct SubNets per window) evaluations per caching
        # window — strictly fewer than one per query on this trace.
        assert 0 < proxy.calls < len(trace)


class TestBaselines:
    @pytest.fixture(scope="class")
    def shared(self, mobilenetv3, mobilenetv3_subnets):
        accel = SushiAccelModel(ANALYTIC_DEFAULT, with_pb=True)
        accel_no_pb = SushiAccelModel(ANALYTIC_DEFAULT, with_pb=False)
        accuracy = AccuracyModel(mobilenetv3)
        return mobilenetv3, mobilenetv3_subnets, accel, accel_no_pb, accuracy

    def test_no_sushi_serves_all_queries(self, shared, trace):
        supernet, subnets, _, accel_no_pb, accuracy = shared
        server = NoSushiServer(supernet, subnets, accel_no_pb, accuracy)
        records = server.serve(trace)
        assert len(records) == len(trace)
        assert all(r.cache_hit_ratio == 0.0 for r in records)

    def test_no_sushi_strict_accuracy_met(self, shared, trace):
        supernet, subnets, _, accel_no_pb, accuracy = shared
        server = NoSushiServer(supernet, subnets, accel_no_pb, accuracy)
        for r in server.serve(trace):
            assert r.served_accuracy >= r.accuracy_constraint - 1e-9

    def test_state_unaware_gets_cache_hits(self, shared, trace):
        supernet, subnets, accel, _, accuracy = shared
        server = StateUnawareCachingServer(
            supernet, subnets, accel, accuracy, cache_update_period=4
        )
        records = server.serve(trace)
        assert any(r.cache_hit_ratio > 0 for r in records[5:])

    def test_state_unaware_invalid_period_rejected(self, shared):
        supernet, subnets, accel, _, accuracy = shared
        with pytest.raises(ValueError):
            StateUnawareCachingServer(supernet, subnets, accel, accuracy, cache_update_period=0)

    def test_sushi_no_worse_than_no_sushi(self, shared, stack, trace):
        supernet, subnets, _, accel_no_pb, accuracy = shared
        no_sushi = NoSushiServer(supernet, subnets, accel_no_pb, accuracy)
        base = no_sushi.serve(trace)
        stack.reset()
        sushi = stack.serve(trace)
        mean = lambda rs: sum(r.served_latency_ms for r in rs) / len(rs)
        assert mean(sushi) <= mean(base) * 1.001

    def test_strict_latency_policy_baseline(self, shared, trace):
        supernet, subnets, _, accel_no_pb, accuracy = shared
        server = NoSushiServer(
            supernet, subnets, accel_no_pb, accuracy, policy=Policy.STRICT_LATENCY
        )
        records = server.serve(trace)
        assert len(records) == len(trace)
