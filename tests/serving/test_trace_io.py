"""Unit tests for trace-log I/O (`repro.serving.trace_io`).

The property file (`tests/properties/test_property_trace.py`) proves the
round-trip laws; these tests pin the loader's edge cases and error
messages — malformed logs must fail loudly at load time, never mid-run.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.serving.trace_io import (
    TraceLog,
    fit_piecewise_poisson,
    load_trace_log,
    read_csv_log,
    read_jsonl_log,
    write_csv_log,
    write_jsonl_log,
)


def write(path, text):
    path.write_text(text, encoding="utf-8")
    return path


class TestTraceLogValidation:
    def test_sorts_by_timestamp_carrying_columns(self):
        log = TraceLog(
            timestamps_ms=np.array([3.0, 1.0, 2.0]),
            slo_ms=np.array([30.0, 10.0, 20.0]),
            accuracy_floor=np.array([0.3, 0.1, 0.2]),
        )
        assert log.timestamps_ms.tolist() == [1.0, 2.0, 3.0]
        assert log.slo_ms.tolist() == [10.0, 20.0, 30.0]
        assert log.accuracy_floor.tolist() == [0.1, 0.2, 0.3]

    def test_head_limits_after_sorting(self):
        log = TraceLog(timestamps_ms=np.array([5.0, 1.0, 3.0]))
        assert log.head(2).timestamps_ms.tolist() == [1.0, 3.0]
        assert len(log.head(99)) == 3

    @pytest.mark.parametrize(
        "kwargs, match",
        [
            ({"timestamps_ms": np.array([])}, "at least one"),
            ({"timestamps_ms": np.array([np.nan])}, "finite"),
            ({"timestamps_ms": np.array([-1.0])}, "non-negative"),
            (
                {"timestamps_ms": np.array([1.0]), "slo_ms": np.array([0.0])},
                "positive",
            ),
            (
                {
                    "timestamps_ms": np.array([1.0]),
                    "accuracy_floor": np.array([1.0]),
                },
                r"\(0, 1\)",
            ),
            (
                {"timestamps_ms": np.array([1.0, 2.0]), "slo_ms": np.array([1.0])},
                "1 values for 2 timestamps",
            ),
        ],
    )
    def test_invalid_logs_rejected(self, kwargs, match):
        with pytest.raises(ValueError, match=match):
            TraceLog(**kwargs)

    def test_rows_and_columns_agree(self):
        log = TraceLog(
            timestamps_ms=np.array([1.0, 2.0]), slo_ms=np.array([5.0, 6.0])
        )
        assert log.columns() == ("timestamp_ms", "slo_ms")
        assert log.rows() == [
            {"timestamp_ms": 1.0, "slo_ms": 5.0},
            {"timestamp_ms": 2.0, "slo_ms": 6.0},
        ]


class TestReaders:
    def test_unknown_csv_column_rejected(self, tmp_path):
        path = write(tmp_path / "log.csv", "timestamp_ms,priority\n1.0,2\n")
        with pytest.raises(ValueError, match="unknown trace log columns"):
            read_csv_log(path)

    def test_missing_timestamp_column_rejected(self, tmp_path):
        path = write(tmp_path / "log.jsonl", '{"slo_ms": 1.0}\n')
        with pytest.raises(ValueError, match="timestamp_ms"):
            read_jsonl_log(path)

    def test_empty_log_rejected(self, tmp_path):
        path = write(tmp_path / "log.csv", "timestamp_ms\n")
        with pytest.raises(ValueError, match="empty trace log"):
            read_csv_log(path)

    def test_optional_column_missing_midway_rejected(self, tmp_path):
        path = write(
            tmp_path / "log.csv", "timestamp_ms,slo_ms\n1.0,2.0\n2.0,\n"
        )
        with pytest.raises(ValueError, match="row 1 is missing 'slo_ms'"):
            read_csv_log(path)

    def test_optional_column_introduced_midway_rejected(self, tmp_path):
        path = write(
            tmp_path / "log.jsonl",
            '{"timestamp_ms": 1.0}\n{"timestamp_ms": 2.0, "slo_ms": 3.0}\n',
        )
        with pytest.raises(ValueError, match="midway"):
            read_jsonl_log(path)

    def test_non_numeric_value_rejected(self, tmp_path):
        path = write(tmp_path / "log.csv", "timestamp_ms\nfast\n")
        with pytest.raises(ValueError, match="not a number"):
            read_csv_log(path)

    def test_invalid_json_line_rejected(self, tmp_path):
        path = write(tmp_path / "log.jsonl", '{"timestamp_ms": 1.0}\n{oops\n')
        with pytest.raises(ValueError, match="invalid JSON"):
            read_jsonl_log(path)

    def test_non_object_json_line_rejected(self, tmp_path):
        path = write(tmp_path / "log.jsonl", "[1.0]\n")
        with pytest.raises(ValueError):
            read_jsonl_log(path)


class TestLoadDispatch:
    def test_dispatches_by_extension(self, tmp_path):
        log = TraceLog(
            timestamps_ms=np.array([0.5, 1.5, 2.5]), slo_ms=np.array([1.0, 2.0, 3.0])
        )
        csv_path = tmp_path / "log.csv"
        jsonl_path = tmp_path / "log.jsonl"
        write_csv_log(csv_path, log)
        write_jsonl_log(jsonl_path, log)
        assert load_trace_log(csv_path) == log
        assert load_trace_log(jsonl_path) == log

    def test_limit_applies_after_sorting(self, tmp_path):
        path = write(tmp_path / "log.csv", "timestamp_ms\n5.0\n1.0\n3.0\n")
        limited = load_trace_log(path, limit=2)
        assert limited.timestamps_ms.tolist() == [1.0, 3.0]

    def test_unknown_extension_rejected(self, tmp_path):
        path = write(tmp_path / "log.parquet", "timestamp_ms\n1.0\n")
        with pytest.raises(ValueError):
            load_trace_log(path)


class TestFitterEdgeCases:
    def test_needs_two_timestamps(self):
        with pytest.raises(ValueError, match="at least two"):
            fit_piecewise_poisson(np.array([1.0]))

    def test_needs_positive_span(self):
        with pytest.raises(ValueError, match="positive time span"):
            fit_piecewise_poisson(np.array([2.0, 2.0, 2.0]))

    def test_bursty_log_yields_multiple_segments_and_bursts(self):
        quiet = np.arange(50, dtype=np.float64) * 10.0
        burst = quiet[-1] + 1.0 + np.arange(50, dtype=np.float64) * 0.1
        fit = fit_piecewise_poisson(np.concatenate([quiet, burst]))
        assert len(fit.segments) >= 2
        assert fit.num_burst_windows >= 1
        assert fit.peak_to_mean > 1.0
