"""Unit tests for workload (query stream) generators."""

import numpy as np
import pytest

from repro.serving.workload import WorkloadGenerator, WorkloadSpec


class TestWorkloadSpec:
    def test_invalid_ranges_rejected(self):
        with pytest.raises(ValueError):
            WorkloadSpec(accuracy_range=(0.8, 0.7))
        with pytest.raises(ValueError):
            WorkloadSpec(latency_range_ms=(5.0, 1.0))
        with pytest.raises(ValueError):
            WorkloadSpec(num_queries=0)
        with pytest.raises(ValueError):
            WorkloadSpec(burst_fraction=1.5)


@pytest.mark.parametrize("pattern", ["uniform", "phased", "drift", "bursty"])
class TestPatterns:
    def test_length_and_bounds(self, pattern):
        spec = WorkloadSpec(num_queries=100, pattern=pattern)
        trace = WorkloadGenerator(spec, seed=1).generate()
        assert len(trace) == 100
        lo_a, hi_a = spec.accuracy_range
        lo_l, hi_l = spec.latency_range_ms
        for q in trace:
            assert lo_a <= q.accuracy_constraint <= hi_a
            assert lo_l <= q.latency_constraint_ms <= hi_l

    def test_deterministic_given_seed(self, pattern):
        spec = WorkloadSpec(num_queries=50, pattern=pattern)
        a = WorkloadGenerator(spec, seed=7).generate()
        b = WorkloadGenerator(spec, seed=7).generate()
        assert a.accuracy_constraints == b.accuracy_constraints
        assert a.latency_constraints_ms == b.latency_constraints_ms

    def test_different_seeds_differ(self, pattern):
        spec = WorkloadSpec(num_queries=50, pattern=pattern)
        a = WorkloadGenerator(spec, seed=1).generate()
        b = WorkloadGenerator(spec, seed=2).generate()
        assert a.accuracy_constraints != b.accuracy_constraints


class TestPatternShapes:
    def test_drift_accuracy_increases(self):
        spec = WorkloadSpec(num_queries=200, pattern="drift")
        trace = WorkloadGenerator(spec, seed=0).generate()
        acc = np.array(trace.accuracy_constraints)
        first, last = acc[:50].mean(), acc[-50:].mean()
        assert last > first

    def test_bursty_has_tight_latency_cluster(self):
        spec = WorkloadSpec(num_queries=300, pattern="bursty", burst_fraction=0.3)
        trace = WorkloadGenerator(spec, seed=0).generate()
        lat = np.array(trace.latency_constraints_ms)
        lo, hi = spec.latency_range_ms
        tight = np.mean(lat < lo + 0.25 * (hi - lo))
        assert 0.1 < tight < 0.5

    def test_phased_has_distinct_phases(self):
        spec = WorkloadSpec(num_queries=200, pattern="phased", num_phases=2)
        trace = WorkloadGenerator(spec, seed=0).generate()
        acc = np.array(trace.accuracy_constraints)
        assert abs(acc[:100].mean() - acc[100:].mean()) > 0.01

    def test_trace_name_includes_pattern(self):
        spec = WorkloadSpec(num_queries=10, pattern="uniform")
        assert "uniform" in WorkloadGenerator(spec, seed=3).generate().name
