"""Unit tests for the calibrated accuracy model."""

import pytest

from repro.supernet.accuracy import AccuracyCalibration, AccuracyModel
from repro.supernet.subnet import max_subnet, min_subnet


class TestAccuracyCalibration:
    def test_invalid_range_rejected(self):
        with pytest.raises(ValueError):
            AccuracyCalibration(min_accuracy=0.8, max_accuracy=0.7)
        with pytest.raises(ValueError):
            AccuracyCalibration(min_accuracy=0.0, max_accuracy=0.8)

    def test_invalid_curvature_rejected(self):
        with pytest.raises(ValueError):
            AccuracyCalibration(min_accuracy=0.7, max_accuracy=0.8, curvature=0.0)


class TestAccuracyModel:
    def test_anchors_hit_calibration(self, resnet50, resnet50_accuracy):
        cal = resnet50_accuracy.calibration
        assert resnet50_accuracy.accuracy(min_subnet(resnet50)) == pytest.approx(cal.min_accuracy, abs=1e-9)
        assert resnet50_accuracy.accuracy(max_subnet(resnet50)) == pytest.approx(cal.max_accuracy, abs=1e-9)

    def test_monotone_over_pareto_family(self, resnet50_subnets, resnet50_accuracy):
        accs = [resnet50_accuracy.accuracy(sn) for sn in resnet50_subnets]
        assert accs == sorted(accs)
        assert len(set(accs)) == len(accs)

    def test_paper_accuracy_range(self, resnet50_subnets, resnet50_accuracy):
        accs = [resnet50_accuracy.accuracy(sn) for sn in resnet50_subnets]
        assert all(0.74 <= a <= 0.81 for a in accs)

    def test_percent_helper(self, resnet50_subnets, resnet50_accuracy):
        acc = resnet50_accuracy.accuracy(resnet50_subnets[0])
        assert resnet50_accuracy.accuracy_percent(resnet50_subnets[0]) == pytest.approx(100 * acc)

    def test_wrong_family_rejected(self, resnet50_accuracy, mobilenetv3_subnets):
        with pytest.raises(ValueError):
            resnet50_accuracy.accuracy(mobilenetv3_subnets[0])

    def test_normalized_capacity_bounds(self, resnet50, resnet50_accuracy, resnet50_subnets):
        for sn in resnet50_subnets:
            assert 0.0 <= resnet50_accuracy.normalized_capacity(sn) <= 1.0

    def test_deterministic(self, resnet50, resnet50_subnets):
        a = AccuracyModel(resnet50)
        b = AccuracyModel(resnet50)
        for sn in resnet50_subnets:
            assert a.accuracy(sn) == b.accuracy(sn)
