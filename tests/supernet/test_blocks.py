"""Unit tests for elastic block materialization."""

import pytest

from repro.supernet.blocks import (
    BottleneckBlock,
    MBConvBlock,
    block_weight_bytes,
    validate_block_chain,
)
from repro.supernet.layers import LayerKind


@pytest.fixture
def bottleneck():
    return BottleneckBlock(
        name="stage1.block1",
        in_channels=64,
        out_channels=256,
        input_hw=56,
        stride=1,
        max_expand_ratio=0.35,
        has_projection=True,
    )


@pytest.fixture
def mbconv():
    return MBConvBlock(
        name="stage2.block1",
        in_channels=24,
        out_channels=40,
        input_hw=56,
        stride=2,
        kernel_size=5,
        max_expand_ratio=6.0,
        use_se=True,
    )


class TestBottleneckBlock:
    def test_materialize_layer_count_with_projection(self, bottleneck):
        layers = bottleneck.materialize(expand_ratio=0.35)
        assert len(layers) == 4  # conv1, conv2, conv3, shortcut

    def test_materialize_layer_count_without_projection(self):
        block = BottleneckBlock(
            name="b", in_channels=256, out_channels=256, input_hw=56, max_expand_ratio=0.35
        )
        assert len(block.materialize(expand_ratio=0.35)) == 3

    def test_smaller_expand_means_fewer_weights(self, bottleneck):
        small = block_weight_bytes(bottleneck, expand_ratio=0.2)
        large = block_weight_bytes(bottleneck, expand_ratio=0.35)
        assert small < large

    def test_width_mult_scales_weights(self, bottleneck):
        narrow = block_weight_bytes(bottleneck, expand_ratio=0.35, width_mult=0.65)
        full = block_weight_bytes(bottleneck, expand_ratio=0.35, width_mult=1.0)
        assert narrow < full

    def test_invalid_expand_raises(self, bottleneck):
        with pytest.raises(ValueError):
            bottleneck.materialize(expand_ratio=0.5)

    def test_layer_names_stable_across_expand(self, bottleneck):
        names_small = [l.name for l in bottleneck.materialize(expand_ratio=0.2)]
        names_large = [l.name for l in bottleneck.materialize(expand_ratio=0.35)]
        assert names_small == names_large

    def test_spatial_conv_has_stride(self, bottleneck):
        layers = {l.name: l for l in bottleneck.materialize(expand_ratio=0.35)}
        assert layers["stage1.block1.conv2"].kind == LayerKind.CONV

    def test_channels_rounded_to_multiple_of_8(self, bottleneck):
        layers = bottleneck.materialize(expand_ratio=0.2, width_mult=0.65)
        for layer in layers:
            assert layer.out_channels % 8 == 0 or layer.out_channels == 1000


class TestMBConvBlock:
    def test_contains_depthwise(self, mbconv):
        kinds = [l.kind for l in mbconv.materialize(expand_ratio=6.0)]
        assert LayerKind.DEPTHWISE_CONV in kinds

    def test_se_layers_present(self, mbconv):
        names = [l.name for l in mbconv.materialize(expand_ratio=6.0)]
        assert any("se_reduce" in n for n in names)
        assert any("se_expand" in n for n in names)

    def test_no_se_when_disabled(self):
        block = MBConvBlock(
            name="b", in_channels=24, out_channels=40, input_hw=56, max_expand_ratio=6.0
        )
        names = [l.name for l in block.materialize(expand_ratio=6.0)]
        assert not any("se_" in n for n in names)

    def test_expand_ratio_scales_mid_channels(self, mbconv):
        small = block_weight_bytes(mbconv, expand_ratio=3.0)
        large = block_weight_bytes(mbconv, expand_ratio=6.0)
        assert small < large

    def test_depthwise_groups_equal_channels(self, mbconv):
        layers = mbconv.materialize(expand_ratio=6.0)
        dw = next(l for l in layers if l.kind == LayerKind.DEPTHWISE_CONV)
        assert dw.groups == dw.in_channels == dw.out_channels

    def test_stride_applied_to_depthwise(self, mbconv):
        layers = mbconv.materialize(expand_ratio=6.0)
        dw = next(l for l in layers if l.kind == LayerKind.DEPTHWISE_CONV)
        assert dw.stride == 2

    def test_project_output_channels(self, mbconv):
        layers = mbconv.materialize(expand_ratio=4.0)
        project = next(l for l in layers if l.name.endswith("project"))
        assert project.out_channels == 40


class TestValidateBlockChain:
    def test_valid_chain_passes(self):
        blocks = [
            BottleneckBlock(name="b1", in_channels=64, out_channels=256, input_hw=56, max_expand_ratio=0.35),
            BottleneckBlock(name="b2", in_channels=256, out_channels=256, input_hw=56, max_expand_ratio=0.35),
        ]
        validate_block_chain(blocks)  # should not raise

    def test_channel_mismatch_raises(self):
        blocks = [
            BottleneckBlock(name="b1", in_channels=64, out_channels=256, input_hw=56, max_expand_ratio=0.35),
            BottleneckBlock(name="b2", in_channels=128, out_channels=256, input_hw=56, max_expand_ratio=0.35),
        ]
        with pytest.raises(ValueError, match="mismatch"):
            validate_block_chain(blocks)

    def test_resolution_mismatch_raises(self):
        blocks = [
            BottleneckBlock(name="b1", in_channels=64, out_channels=256, input_hw=56, stride=2, max_expand_ratio=0.35),
            BottleneckBlock(name="b2", in_channels=256, out_channels=256, input_hw=56, max_expand_ratio=0.35),
        ]
        with pytest.raises(ValueError, match="mismatch"):
            validate_block_chain(blocks)
