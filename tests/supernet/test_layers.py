"""Unit tests for ConvLayerSpec and LayerSlice."""

import math

import pytest

from repro.supernet.layers import ConvLayerSpec, LayerKind, LayerSlice


def make_conv(**overrides):
    defaults = dict(
        name="conv",
        kind=LayerKind.CONV,
        in_channels=64,
        out_channels=128,
        kernel_size=3,
        input_hw=56,
        stride=1,
    )
    defaults.update(overrides)
    return ConvLayerSpec(**defaults)


class TestConvLayerSpec:
    def test_weight_count_standard_conv(self):
        layer = make_conv()
        assert layer.weight_count == 128 * 64 * 9

    def test_weight_bytes_int8(self):
        layer = make_conv()
        assert layer.weight_bytes == layer.weight_count  # 8 bits -> 1 byte each

    def test_weight_bytes_scale_with_bitwidth(self):
        w8 = make_conv(weight_bits=8).weight_bytes
        w16 = make_conv(weight_bits=16).weight_bytes
        assert w16 == 2 * w8

    def test_depthwise_weight_count(self):
        layer = make_conv(
            kind=LayerKind.DEPTHWISE_CONV, in_channels=64, out_channels=64, groups=64
        )
        assert layer.weight_count == 64 * 9

    def test_linear_weight_count(self):
        layer = make_conv(kind=LayerKind.LINEAR, in_channels=2048, out_channels=1000, kernel_size=1, input_hw=1)
        assert layer.weight_count == 2048 * 1000

    def test_macs_standard_conv(self):
        layer = make_conv()
        assert layer.macs == 56 * 56 * 128 * 64 * 9

    def test_flops_is_twice_macs(self):
        layer = make_conv()
        assert layer.flops == 2 * layer.macs

    def test_output_hw_with_stride(self):
        layer = make_conv(stride=2)
        assert layer.output_hw == 28

    def test_output_hw_rounds_up(self):
        layer = make_conv(input_hw=7, stride=2)
        assert layer.output_hw == 4

    def test_pool_has_no_macs(self):
        layer = make_conv(kind=LayerKind.POOL)
        assert layer.macs == 0
        assert layer.arithmetic_intensity() == 0.0

    def test_activation_bytes(self):
        layer = make_conv()
        assert layer.input_act_bytes == 64 * 56 * 56
        assert layer.output_act_bytes == 128 * 56 * 56

    def test_arithmetic_intensity_positive(self):
        layer = make_conv()
        ai = layer.arithmetic_intensity()
        assert ai == pytest.approx(layer.flops / layer.total_data_bytes)

    def test_arithmetic_intensity_increases_with_caching(self):
        layer = make_conv()
        assert layer.arithmetic_intensity(cached_weight_bytes=layer.weight_bytes // 2) > layer.arithmetic_intensity()

    def test_arithmetic_intensity_cache_clamped(self):
        layer = make_conv()
        full = layer.arithmetic_intensity(cached_weight_bytes=10 * layer.weight_bytes)
        assert full == layer.arithmetic_intensity(cached_weight_bytes=layer.weight_bytes)

    def test_with_channels_depthwise_keeps_groups(self):
        layer = make_conv(
            kind=LayerKind.DEPTHWISE_CONV, in_channels=64, out_channels=64, groups=64
        )
        resized = layer.with_channels(32, 32)
        assert resized.groups == 32

    def test_invalid_channels_raise(self):
        with pytest.raises(ValueError):
            make_conv(in_channels=0)

    def test_invalid_groups_raise(self):
        with pytest.raises(ValueError):
            make_conv(in_channels=64, groups=7)

    def test_describe_mentions_name(self):
        assert "conv" in make_conv().describe()


class TestLayerSlice:
    def test_full_slice_matches_layer_bytes(self):
        layer = make_conv()
        sl = LayerSlice(layer=layer, kernels=layer.out_channels, channels=layer.in_channels)
        assert sl.is_full
        assert sl.weight_bytes == layer.weight_bytes

    def test_empty_slice(self):
        layer = make_conv()
        sl = LayerSlice(layer=layer, kernels=0, channels=10)
        assert sl.is_empty
        assert sl.weight_bytes == 0

    def test_partial_slice_bytes_scale(self):
        layer = make_conv()
        half = LayerSlice(layer=layer, kernels=64, channels=32)
        assert half.weight_bytes == 64 * 32 * 9

    def test_out_of_range_kernels_raise(self):
        layer = make_conv()
        with pytest.raises(ValueError):
            LayerSlice(layer=layer, kernels=layer.out_channels + 1, channels=1)

    def test_intersect_takes_minimum(self):
        layer = make_conv()
        a = LayerSlice(layer=layer, kernels=100, channels=30)
        b = LayerSlice(layer=layer, kernels=60, channels=64)
        inter = a.intersect(b)
        assert inter.kernels == 60
        assert inter.channels == 30

    def test_intersect_different_layers_raises(self):
        a = LayerSlice(layer=make_conv(name="a"), kernels=1, channels=1)
        b = LayerSlice(layer=make_conv(name="b"), kernels=1, channels=1)
        with pytest.raises(ValueError):
            a.intersect(b)

    def test_contains(self):
        layer = make_conv()
        big = LayerSlice(layer=layer, kernels=128, channels=64)
        small = LayerSlice(layer=layer, kernels=64, channels=32)
        assert big.contains(small)
        assert not small.contains(big)

    def test_depthwise_slice_bytes(self):
        layer = make_conv(
            kind=LayerKind.DEPTHWISE_CONV, in_channels=64, out_channels=64, groups=64
        )
        sl = LayerSlice(layer=layer, kernels=32, channels=64)
        assert sl.weight_bytes == 32 * 9
