"""Unit tests for Pareto-frontier extraction."""

import pytest

from repro.supernet.pareto import ParetoPoint, build_pareto_points, pareto_frontier
from repro.supernet.accuracy import AccuracyModel
from repro.accelerator.analytic_model import SushiAccelModel
from repro.accelerator.platforms import ANALYTIC_DEFAULT


def _point(subnet, latency, accuracy):
    return ParetoPoint(subnet=subnet, latency_ms=latency, accuracy=accuracy)


class TestParetoPoint:
    def test_domination(self, resnet50_subnets):
        sn = resnet50_subnets[0]
        better = _point(sn, 1.0, 0.80)
        worse = _point(sn, 2.0, 0.78)
        assert better.dominates(worse)
        assert not worse.dominates(better)

    def test_no_self_domination(self, resnet50_subnets):
        p = _point(resnet50_subnets[0], 1.0, 0.8)
        assert not p.dominates(p)


class TestParetoFrontier:
    def test_removes_dominated(self, resnet50_subnets):
        sn = resnet50_subnets[0]
        points = [_point(sn, 1.0, 0.76), _point(sn, 2.0, 0.75), _point(sn, 3.0, 0.80)]
        frontier = pareto_frontier(points)
        assert len(frontier) == 2
        assert all(p.accuracy != 0.75 for p in frontier)

    def test_frontier_sorted_and_monotone(self, resnet50_subnets):
        sn = resnet50_subnets[0]
        points = [_point(sn, l, a) for l, a in [(5, 0.79), (1, 0.75), (3, 0.78), (2, 0.74)]]
        frontier = pareto_frontier(points)
        lats = [p.latency_ms for p in frontier]
        accs = [p.accuracy for p in frontier]
        assert lats == sorted(lats)
        assert accs == sorted(accs)

    def test_empty_input(self):
        assert pareto_frontier([]) == []

    def test_paper_family_is_nondominated(self, resnet50, resnet50_subnets):
        # The zoo's Pareto family should itself lie on the frontier of the
        # latency/accuracy space induced by the analytic model.
        model = SushiAccelModel(ANALYTIC_DEFAULT)
        accuracy = AccuracyModel(resnet50)
        points = build_pareto_points(
            resnet50_subnets, model.subnet_latency_ms, accuracy.accuracy
        )
        frontier = pareto_frontier(points)
        assert len(frontier) == len(resnet50_subnets)
