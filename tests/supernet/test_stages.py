"""Unit tests for StageSpec (elastic depth selection)."""

import pytest

from repro.supernet.blocks import BottleneckBlock
from repro.supernet.stages import HeadSpec, StageSpec, StemSpec, stage_names
from repro.supernet.layers import ConvLayerSpec, LayerKind


def make_stage(num_blocks=4, min_depth=2):
    blocks = []
    for j in range(num_blocks):
        first = j == 0
        blocks.append(
            BottleneckBlock(
                name=f"stage1.block{j + 1}",
                in_channels=64 if first else 256,
                out_channels=256,
                input_hw=56,
                stride=1,
                max_expand_ratio=0.35,
                has_projection=first,
            )
        )
    return StageSpec(name="stage1", blocks=tuple(blocks), min_depth=min_depth)


class TestStageSpec:
    def test_depth_choices(self):
        stage = make_stage()
        assert stage.depth_choices == (2, 3, 4)

    def test_select_returns_prefix(self):
        stage = make_stage()
        selected = stage.select(3)
        assert [b.name for b in selected] == [
            "stage1.block1",
            "stage1.block2",
            "stage1.block3",
        ]

    def test_select_invalid_depth_raises(self):
        stage = make_stage()
        with pytest.raises(ValueError):
            stage.select(1)
        with pytest.raises(ValueError):
            stage.select(5)

    def test_materialize_layer_count_scales_with_depth(self):
        stage = make_stage()
        shallow = stage.materialize(depth=2, expand_ratio=0.35)
        deep = stage.materialize(depth=4, expand_ratio=0.35)
        assert len(deep) > len(shallow)

    def test_max_layers_covers_all_blocks(self):
        stage = make_stage()
        layers = stage.max_layers()
        block_names = {l.name.rsplit(".", 1)[0] for l in layers}
        assert block_names == {f"stage1.block{j}" for j in range(1, 5)}

    def test_in_out_channels(self):
        stage = make_stage()
        assert stage.in_channels == 64
        assert stage.out_channels == 256

    def test_min_depth_validation(self):
        with pytest.raises(ValueError):
            make_stage(min_depth=0)
        with pytest.raises(ValueError):
            make_stage(min_depth=5)

    def test_empty_stage_raises(self):
        with pytest.raises(ValueError):
            StageSpec(name="empty", blocks=())

    def test_stage_names_helper(self):
        stages = [make_stage()]
        assert stage_names(stages) == ["stage1"]


class TestStemAndHead:
    def test_stem_weight_bytes(self):
        stem = StemSpec(
            layers=(
                ConvLayerSpec(
                    name="stem.conv",
                    kind=LayerKind.CONV,
                    in_channels=3,
                    out_channels=64,
                    kernel_size=7,
                    input_hw=224,
                    stride=2,
                ),
            )
        )
        assert stem.weight_bytes == 64 * 3 * 49

    def test_empty_head_has_zero_bytes(self):
        assert HeadSpec().weight_bytes == 0
