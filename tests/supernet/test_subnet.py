"""Unit tests for SubNet materialization, encoding and overlap."""

import numpy as np
import pytest

from repro.supernet.subnet import SubNet, SubNetConfig, max_subnet, min_subnet, uniform_config


class TestSubNetConstruction:
    def test_invalid_config_rejected(self, resnet50):
        config = SubNetConfig(depths=(2, 2, 2, 2), expand_ratio=0.9)
        with pytest.raises(ValueError):
            SubNet(resnet50, config)

    def test_min_subnet_smaller_than_max(self, resnet50):
        assert min_subnet(resnet50).weight_bytes < max_subnet(resnet50).weight_bytes

    def test_max_subnet_matches_supernet_bytes(self, resnet50):
        assert max_subnet(resnet50).weight_bytes == resnet50.max_weight_bytes

    def test_uniform_config_clamps_depth(self, resnet50):
        config = uniform_config(resnet50, depth=10, expand_ratio=0.35)
        assert all(d <= stage.max_depth for d, stage in zip(config.depths, resnet50.stages))

    def test_equality_and_hash(self, resnet50):
        a = min_subnet(resnet50)
        b = min_subnet(resnet50)
        assert a == b
        assert hash(a) == hash(b)

    def test_label_generation(self):
        config = SubNetConfig(depths=(2, 3), expand_ratio=0.25, width_mult=0.8)
        assert config.label() == "d23-e0.25-w0.8"
        named = SubNetConfig(depths=(2, 3), expand_ratio=0.25, name="A")
        assert named.label() == "A"


class TestSubNetQuantities:
    def test_weight_bytes_positive_and_monotone(self, resnet50_subnets):
        sizes = [sn.weight_bytes for sn in resnet50_subnets]
        assert all(s > 0 for s in sizes)
        assert sizes == sorted(sizes)

    def test_flops_monotone_across_family(self, resnet50_subnets):
        flops = [sn.flops for sn in resnet50_subnets]
        assert flops == sorted(flops)

    def test_active_layers_match_slices(self, resnet50_subnets):
        subnet = resnet50_subnets[0]
        assert len(subnet.active_layers()) == subnet.num_layers

    def test_active_layer_channels_respect_slices(self, resnet50_subnets):
        subnet = resnet50_subnets[0]
        for sl, layer in zip(subnet.ordered_slices, subnet.active_layers()):
            assert layer.out_channels == sl.kernels
            assert layer.in_channels == sl.channels

    def test_paper_size_ranges(self, resnet50_subnets, mobilenetv3_subnets):
        # Weight footprints should be in the same ballpark as the paper's
        # reported ranges (ResNet50 7.58-27.47 MB, MobV3 2.97-4.74 MB int8).
        r_min = resnet50_subnets[0].weight_bytes / 1e6
        r_max = resnet50_subnets[-1].weight_bytes / 1e6
        assert 3.0 < r_min < 12.0
        assert 20.0 < r_max < 35.0
        m_min = mobilenetv3_subnets[0].weight_bytes / 1e6
        m_max = mobilenetv3_subnets[-1].weight_bytes / 1e6
        assert 1.0 < m_min < 4.0
        assert 3.5 < m_max < 8.0


class TestSubNetEncoding:
    def test_encoding_dimension(self, resnet50, resnet50_subnets):
        vec = resnet50_subnets[0].encode()
        assert vec.shape == (2 * resnet50.num_layers,)

    def test_encoding_nonnegative(self, resnet50_subnets):
        assert np.all(resnet50_subnets[0].encode() >= 0)

    def test_larger_subnet_has_elementwise_geq_encoding(self, resnet50_subnets):
        small = resnet50_subnets[0].encode()
        large = resnet50_subnets[-1].encode()
        assert np.all(large >= small)

    def test_dropped_layers_encode_to_zero(self, resnet50, resnet50_subnets):
        small = resnet50_subnets[0]
        vec = small.encode()
        active = set(small.layer_names)
        for name in resnet50.layer_names:
            idx = resnet50.layer_index(name)
            if name not in active:
                assert vec[2 * idx] == 0 and vec[2 * idx + 1] == 0


class TestSharedBytes:
    def test_shared_bytes_symmetric(self, resnet50_subnets):
        a, b = resnet50_subnets[0], resnet50_subnets[-1]
        assert a.shared_bytes_with(b) == b.shared_bytes_with(a)

    def test_shared_bytes_bounded_by_smaller(self, resnet50_subnets):
        a, b = resnet50_subnets[0], resnet50_subnets[-1]
        assert a.shared_bytes_with(b) <= min(a.weight_bytes, b.weight_bytes)

    def test_self_sharing_is_full(self, resnet50_subnets):
        a = resnet50_subnets[2]
        assert a.shared_bytes_with(a) == a.weight_bytes

    def test_cross_supernet_sharing_raises(self, resnet50_subnets, mobilenetv3_subnets):
        with pytest.raises(ValueError):
            resnet50_subnets[0].shared_bytes_with(mobilenetv3_subnets[0])
