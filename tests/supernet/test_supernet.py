"""Unit tests for the SuperNet container."""

import pytest

from repro.supernet.supernet import ElasticConfig
from repro.supernet.subnet import SubNetConfig


class TestElasticConfig:
    def test_rejects_empty_choices(self):
        with pytest.raises(ValueError):
            ElasticConfig(depth_choices=(), expand_choices=(1.0,))

    def test_rejects_unsorted_choices(self):
        with pytest.raises(ValueError):
            ElasticConfig(depth_choices=(4, 2), expand_choices=(1.0,))

    def test_max_properties(self):
        cfg = ElasticConfig(depth_choices=(2, 3, 4), expand_choices=(0.2, 0.35), width_choices=(0.65, 1.0))
        assert cfg.max_depth == 4
        assert cfg.max_expand == 0.35
        assert cfg.max_width == 1.0

    def test_design_space_size(self):
        cfg = ElasticConfig(depth_choices=(2, 3), expand_choices=(0.2, 0.35))
        assert cfg.design_space_size(num_stages=4) == (2 * 2) ** 4


class TestSuperNet:
    def test_layer_names_unique(self, resnet50):
        names = resnet50.layer_names
        assert len(names) == len(set(names))

    def test_layer_lookup(self, resnet50):
        name = resnet50.layer_names[0]
        assert resnet50.layer(name).name == name

    def test_unknown_layer_raises(self, resnet50):
        with pytest.raises(KeyError):
            resnet50.layer("does.not.exist")

    def test_layer_index_ordering(self, resnet50):
        names = resnet50.layer_names
        indices = [resnet50.layer_index(n) for n in names]
        assert indices == sorted(indices)

    def test_max_weight_bytes_positive(self, resnet50, mobilenetv3):
        assert resnet50.max_weight_bytes > mobilenetv3.max_weight_bytes > 0

    def test_design_space_is_astronomical(self, resnet50):
        # The paper quotes >> 10^19 SubGraphs; the SubNet design space alone
        # should be large (thousands of configurations).
        assert resnet50.design_space_size() > 1_000

    def test_full_slices_cover_every_layer(self, resnet50):
        slices = resnet50.full_slices()
        assert set(slices) == set(resnet50.layer_names)
        assert all(sl.is_full for sl in slices.values())

    def test_slices_for_validates_depth_count(self, resnet50):
        with pytest.raises(ValueError):
            resnet50.slices_for(depths=(2, 2), expand_ratio=0.35)

    def test_validate_config_rejects_bad_expand(self, resnet50):
        depths = tuple(s.depth_choices[0] for s in resnet50.stages)
        with pytest.raises(ValueError):
            resnet50.validate_config(depths, expand_ratio=0.9, width_mult=1.0)

    def test_validate_config_rejects_bad_width(self, resnet50):
        depths = tuple(s.depth_choices[0] for s in resnet50.stages)
        with pytest.raises(ValueError):
            resnet50.validate_config(depths, expand_ratio=0.35, width_mult=0.5)

    def test_enumerate_configs_respects_limit(self, resnet50):
        configs = list(resnet50.enumerate_configs(max_configs=10))
        assert len(configs) == 10

    def test_enumerate_configs_are_valid(self, resnet50):
        for depths, expand, width in resnet50.enumerate_configs(max_configs=30):
            resnet50.validate_config(depths, expand, width)  # should not raise

    def test_describe_contains_stage_info(self, resnet50):
        text = resnet50.describe()
        assert "stage1" in text
        assert "ofa_resnet50" in text

    def test_depth_reduces_layer_count(self, resnet50):
        shallow = resnet50.slices_for(depths=(2, 2, 2, 2), expand_ratio=0.35)
        deep = resnet50.slices_for(depths=(4, 4, 4, 4), expand_ratio=0.35)
        assert len(shallow) < len(deep)
