"""Unit tests for the weight store and shared-weight accounting."""

import pytest

from repro.supernet.subnet import max_subnet, min_subnet
from repro.supernet.weights import SharedWeightIndex, WeightStore, total_distinct_bytes


class TestWeightStore:
    def test_total_bytes_matches_supernet(self, resnet50):
        store = WeightStore(resnet50)
        assert store.total_bytes == resnet50.max_weight_bytes

    def test_extents_are_disjoint_and_ordered(self, resnet50):
        store = WeightStore(resnet50)
        extents = [store.extent(name) for name in resnet50.layer_names]
        for prev, nxt in zip(extents, extents[1:]):
            assert prev.end <= nxt.offset

    def test_subnet_bytes_matches_subnet(self, resnet50):
        store = WeightStore(resnet50)
        subnet = min_subnet(resnet50)
        assert store.subnet_bytes(subnet) == subnet.weight_bytes

    def test_slice_extent_is_prefix(self, resnet50):
        store = WeightStore(resnet50)
        subnet = min_subnet(resnet50)
        for sl in subnet.ordered_slices:
            ext = store.slice_extent(sl)
            base = store.extent(sl.layer.name)
            assert ext.offset == base.offset
            assert ext.nbytes <= base.nbytes

    def test_unknown_layer_raises(self, resnet50):
        store = WeightStore(resnet50)
        with pytest.raises(KeyError):
            store.extent("nope")

    def test_read_slice_requires_materialization(self, mobilenetv3):
        store = WeightStore(mobilenetv3)
        subnet = min_subnet(mobilenetv3)
        with pytest.raises(RuntimeError):
            store.read_slice(subnet.ordered_slices[0])

    def test_read_slice_materialized(self, mobilenetv3):
        store = WeightStore(mobilenetv3, materialize=True, seed=1)
        subnet = min_subnet(mobilenetv3)
        sl = subnet.ordered_slices[0]
        data = store.read_slice(sl)
        assert data.nbytes == store.slice_extent(sl).nbytes

    def test_materialized_data_deterministic(self, mobilenetv3):
        a = WeightStore(mobilenetv3, materialize=True, seed=7)
        b = WeightStore(mobilenetv3, materialize=True, seed=7)
        subnet = min_subnet(mobilenetv3)
        sl = subnet.ordered_slices[1]
        assert (a.read_slice(sl) == b.read_slice(sl)).all()


class TestSharedWeightIndex:
    def test_shared_bytes_close_to_min_subnet(self, resnet50_subnets):
        # OFA weight prefixes mean the family intersection is essentially the
        # smallest SubNet (paper: shared 7.55 MB vs min SubNet 7.58 MB).
        idx = SharedWeightIndex(resnet50_subnets)
        smallest = min(sn.weight_bytes for sn in resnet50_subnets)
        assert idx.shared_bytes() == pytest.approx(smallest, rel=0.05)

    def test_pairwise_matrix_shape_and_symmetry(self, resnet50_subnets):
        idx = SharedWeightIndex(resnet50_subnets)
        mat = idx.pairwise_shared_bytes()
        n = len(resnet50_subnets)
        assert mat.shape == (n, n)
        assert (mat == mat.T).all()

    def test_diagonal_is_subnet_size(self, resnet50_subnets):
        idx = SharedWeightIndex(resnet50_subnets)
        mat = idx.pairwise_shared_bytes()
        for i, sn in enumerate(resnet50_subnets):
            assert mat[i, i] == sn.weight_bytes

    def test_sharing_fraction_near_one(self, mobilenetv3_subnets):
        idx = SharedWeightIndex(mobilenetv3_subnets)
        assert 0.8 <= idx.sharing_fraction() <= 1.0

    def test_summary_keys(self, resnet50_subnets):
        summary = SharedWeightIndex(resnet50_subnets).summary()
        assert {"num_subnets", "min_subnet_mb", "max_subnet_mb", "shared_mb"} <= set(summary)

    def test_mixed_supernets_rejected(self, resnet50_subnets, mobilenetv3_subnets):
        with pytest.raises(ValueError):
            SharedWeightIndex([resnet50_subnets[0], mobilenetv3_subnets[0]])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            SharedWeightIndex([])

    def test_weight_sharing_saves_memory(self, resnet50, resnet50_subnets):
        # Storing the family without sharing costs far more than the SuperNet.
        assert total_distinct_bytes(resnet50_subnets) > resnet50.max_weight_bytes
