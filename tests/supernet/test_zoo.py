"""Unit tests for the model zoo."""

import pytest

from repro.supernet.zoo import (
    SUPPORTED_SUPERNETS,
    load_supernet,
    paper_pareto_configs,
    paper_pareto_subnets,
)


class TestLoadSupernet:
    def test_supported_names(self):
        for name in SUPPORTED_SUPERNETS:
            assert load_supernet(name).name == name

    def test_aliases(self):
        assert load_supernet("resnet50").name == "ofa_resnet50"
        assert load_supernet("mobv3").name == "ofa_mobilenetv3"
        assert load_supernet("MobileNetV3").name == "ofa_mobilenetv3"

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown SuperNet"):
            load_supernet("vgg16")

    def test_custom_resolution(self):
        sn = load_supernet("ofa_resnet50", input_hw=192)
        assert sn.input_hw == 192


class TestParetoFamilies:
    def test_family_sizes_match_paper(self, resnet50_subnets, mobilenetv3_subnets):
        assert len(resnet50_subnets) == 6   # A..F
        assert len(mobilenetv3_subnets) == 7  # A..G

    def test_labels_are_letters(self, resnet50_subnets):
        assert [sn.name for sn in resnet50_subnets] == list("ABCDEF")

    def test_sizes_strictly_increasing(self, resnet50_subnets, mobilenetv3_subnets):
        for family in (resnet50_subnets, mobilenetv3_subnets):
            sizes = [sn.weight_bytes for sn in family]
            assert all(a < b for a, b in zip(sizes, sizes[1:]))

    def test_configs_valid_for_supernet(self, resnet50):
        for cfg in paper_pareto_configs("ofa_resnet50"):
            resnet50.validate_config(cfg.depths, cfg.expand_ratio, cfg.width_mult)

    def test_unknown_family_raises(self):
        with pytest.raises(ValueError):
            paper_pareto_configs("vgg16")

    def test_pareto_subnets_belong_to_supernet(self, mobilenetv3, mobilenetv3_subnets):
        assert all(sn.supernet is mobilenetv3 for sn in mobilenetv3_subnets)
