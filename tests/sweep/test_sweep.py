"""Tests for the parallel sweep grid engine (`repro.sweep`).

The load-bearing guarantee: the merged sweep artifact is **byte-identical**
whatever the worker count — parallelism is an execution strategy, never an
observable.  Error cells (a cell whose overrides fail validation or whose
run raises) are reported per cell without poisoning the rest of the grid.
"""

from __future__ import annotations

import json

import pytest

from repro.serving import ArrivalSpec, ReplicaGroupSpec, ScenarioSpec, WorkloadSpec
from repro.sweep import (
    METRIC_FIELDS,
    CellResult,
    SweepAxis,
    SweepResult,
    SweepSpec,
    format_sweep_summary,
    run_sweep,
)

EVENTS = tuple(0.35 * (i + 1) for i in range(20))


def base_scenario() -> ScenarioSpec:
    return ScenarioSpec(
        name="sweep-test",
        supernet_name="ofa_mobilenetv3",
        policy="strict_latency",
        replica_groups=(ReplicaGroupSpec(count=1, name="pool"),),
        router="round_robin",
        admission="drop_expired",
        workload=WorkloadSpec(
            num_queries=20, accuracy_range=None, latency_range_ms=None
        ),
        arrivals=ArrivalSpec(kind="trace", events=EVENTS),
        fast_path=True,
        seed=5,
    )


def grid_spec() -> SweepSpec:
    return SweepSpec(
        base=base_scenario(),
        axes=(
            SweepAxis(path="arrivals.rate_scale", values=(1.0, 2.0)),
            SweepAxis(path="replica_groups.0.count", values=(1, 2)),
        ),
        name="grid-test",
    )


class TestSweepSpec:
    def test_round_trips_exactly(self):
        spec = grid_spec()
        assert SweepSpec.from_dict(spec.to_dict()) == spec
        assert SweepSpec.from_json(spec.to_json()) == spec
        assert SweepSpec.from_dict(json.loads(json.dumps(spec.to_dict()))) == spec

    def test_cells_expand_last_axis_fastest(self):
        cells = grid_spec().cells()
        assert len(cells) == 4
        assert cells[0] == (("arrivals.rate_scale", 1.0), ("replica_groups.0.count", 1))
        assert cells[1] == (("arrivals.rate_scale", 1.0), ("replica_groups.0.count", 2))
        assert cells[2] == (("arrivals.rate_scale", 2.0), ("replica_groups.0.count", 1))
        assert cells[3] == (("arrivals.rate_scale", 2.0), ("replica_groups.0.count", 2))

    def test_cell_scenario_applies_overrides_and_label(self):
        spec = grid_spec()
        cell = spec.cells()[3]
        scenario = spec.scenario(cell)
        assert scenario.arrivals.rate_scale == 2.0
        assert scenario.replica_groups[0].count == 2
        assert scenario.name == (
            "sweep-test[arrivals.rate_scale=2.0,replica_groups.0.count=2]"
        )

    def test_duplicate_axis_paths_rejected(self):
        with pytest.raises(ValueError, match="unique"):
            SweepSpec(
                base=base_scenario(),
                axes=(
                    SweepAxis(path="seed", values=(1,)),
                    SweepAxis(path="seed", values=(2,)),
                ),
            )

    def test_empty_axes_is_one_cell(self):
        spec = SweepSpec(base=base_scenario(), axes=())
        assert spec.num_cells == 1
        assert spec.cells() == ((),)


class TestCellResult:
    def test_requires_exactly_one_of_metrics_or_error(self):
        with pytest.raises(ValueError):
            CellResult(index=0, overrides=())
        with pytest.raises(ValueError):
            CellResult(
                index=0,
                overrides=(),
                error="boom",
                metrics={name: 0.0 for name in METRIC_FIELDS},
            )

    def test_round_trips_exactly(self):
        ok = CellResult(
            index=1,
            overrides=(("seed", 3),),
            metrics={name: float(i) for i, name in enumerate(METRIC_FIELDS)},
        )
        bad = CellResult(index=2, overrides=(("seed", 4),), error="ValueError: nope")
        assert CellResult.from_dict(ok.to_dict()) == ok
        assert CellResult.from_dict(bad.to_dict()) == bad
        assert ok.ok and not bad.ok


class TestSweepDeterminism:
    @pytest.fixture(scope="class")
    def results(self):
        spec = grid_spec()
        return {w: run_sweep(spec, workers=w) for w in (1, 2, 4)}

    def test_all_cells_succeed(self, results):
        for result in results.values():
            assert result.num_ok == 4
            assert result.num_failed == 0

    def test_json_artifact_byte_identical_across_worker_counts(self, results):
        payloads = {w: r.to_json() for w, r in results.items()}
        assert payloads[1] == payloads[2] == payloads[4]

    def test_csv_artifact_byte_identical_across_worker_counts(self, results):
        payloads = {w: r.to_csv() for w, r in results.items()}
        assert payloads[1] == payloads[2] == payloads[4]

    def test_cells_ordered_by_grid_index(self, results):
        for result in results.values():
            assert [c.index for c in result.cells] == [0, 1, 2, 3]

    def test_result_round_trips_exactly(self, results):
        result = results[2]
        assert SweepResult.from_dict(result.to_dict()) == result

    def test_summary_mentions_every_cell(self, results):
        summary = format_sweep_summary(results[1])
        for index in range(4):
            assert f"cell {index}:" in summary


class TestErrorCellIsolation:
    @pytest.fixture(scope="class")
    def poisoned(self):
        spec = SweepSpec(
            base=base_scenario(),
            axes=(SweepAxis(path="replica_groups.0.count", values=(1, -1, 2)),),
            name="poisoned",
        )
        return {w: run_sweep(spec, workers=w) for w in (1, 2)}

    def test_bad_cell_reported_without_poisoning_the_rest(self, poisoned):
        for result in poisoned.values():
            assert result.num_ok == 2
            assert result.num_failed == 1
            bad = result.cells[1]
            assert not bad.ok
            assert bad.error is not None and "ValueError" in bad.error
            assert result.cells[0].ok and result.cells[2].ok

    def test_error_cells_identical_across_worker_counts(self, poisoned):
        assert poisoned[1].to_json() == poisoned[2].to_json()
        assert "ERROR" in format_sweep_summary(poisoned[1])
