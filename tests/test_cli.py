"""Tests for the ``python -m repro`` command line."""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.cli import main
from repro.experiments.registry import list_experiments
from repro.serving import ArrivalSpec, ReplicaGroupSpec, ScenarioSpec, WorkloadSpec
from repro.sweep import SweepAxis, SweepSpec
from repro.core.policies import Policy

REPO_ROOT = Path(__file__).resolve().parents[1]


@pytest.fixture()
def scenario_file(tmp_path):
    spec = ScenarioSpec(
        name="cli-test",
        supernet_name="ofa_mobilenetv3",
        policy=Policy.STRICT_LATENCY,
        replica_groups=(ReplicaGroupSpec(count=2, discipline="edf"),),
        router="jsq",
        admission="drop_expired",
        workload=WorkloadSpec(num_queries=20, accuracy_range=None, latency_range_ms=None),
        arrivals=ArrivalSpec(kind="poisson", rate_per_ms=0.5, seed=0),
        seed=0,
    )
    path = tmp_path / "scenario.json"
    path.write_text(spec.to_json())
    return path


class TestList:
    def test_lists_every_registered_experiment(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for eid in list_experiments():
            assert eid in out


class TestRun:
    def test_runs_a_cheap_experiment(self, capsys):
        assert main(["run", "tab01"]) == 0
        assert capsys.readouterr().out.strip()

    def test_unknown_experiment_fails_cleanly(self, capsys):
        assert main(["run", "fig99"]) == 2
        assert "fig99" in capsys.readouterr().err

    def test_json_dump_writes_artifact(self, tmp_path, capsys):
        out_file = tmp_path / "tab01.json"
        assert main(["run", "tab01", "--json", str(out_file)]) == 0
        data = json.loads(out_file.read_text())
        assert data  # non-empty, JSON-parseable artifact
        assert str(out_file) in capsys.readouterr().out

    def test_json_dump_unwritable_path_fails_cleanly(self, tmp_path, capsys):
        bad = tmp_path / "no" / "such" / "dir" / "out.json"
        assert main(["run", "tab01", "--json", str(bad)]) == 2
        assert "cannot write" in capsys.readouterr().err


class TestServe:
    def test_serves_scenario_file(self, scenario_file, capsys):
        assert main(["serve", "--scenario", str(scenario_file)]) == 0
        out = capsys.readouterr().out
        assert "cli-test" in out
        assert "SLO attainment" in out

    def test_override_changes_the_run(self, scenario_file, capsys):
        assert (
            main(
                [
                    "serve",
                    "--scenario",
                    str(scenario_file),
                    "--override",
                    "num_queries=10",
                    "--override",
                    "replica_groups.0.count=1",
                    "--dump-spec",
                ]
            )
            == 0
        )
        spec = ScenarioSpec.from_dict(json.loads(capsys.readouterr().out))
        assert spec.num_queries == 10
        assert spec.replica_groups[0].count == 1

    def test_string_override_needs_no_quotes(self, scenario_file, capsys):
        assert (
            main(
                [
                    "serve",
                    "--scenario",
                    str(scenario_file),
                    "--override",
                    "workload.pattern=bursty",
                    "--dump-spec",
                ]
            )
            == 0
        )
        spec = ScenarioSpec.from_dict(json.loads(capsys.readouterr().out))
        assert spec.workload.pattern == "bursty"

    def test_missing_file_fails_cleanly(self, capsys):
        assert main(["serve", "--scenario", "/no/such/file.json"]) == 2
        assert "invalid scenario" in capsys.readouterr().err

    def test_out_of_range_override_index_fails_cleanly(self, scenario_file, capsys):
        assert (
            main(
                [
                    "serve",
                    "--scenario",
                    str(scenario_file),
                    "--override",
                    "replica_groups.2.count=4",
                ]
            )
            == 2
        )
        assert "invalid scenario" in capsys.readouterr().err

    def test_invalid_override_path_fails_cleanly(self, scenario_file, capsys):
        assert (
            main(
                ["serve", "--scenario", str(scenario_file), "--override", "bogus=1"]
            )
            == 2
        )
        assert "invalid scenario" in capsys.readouterr().err

    def test_checked_in_hetero_scenario_parses(self):
        path = REPO_ROOT / "examples" / "scenarios" / "hetero_pool.json"
        spec = ScenarioSpec.from_json(path.read_text())
        pb_sizes = {g.pb_kb for g in spec.replica_groups}
        assert len(spec.replica_groups) == 2
        assert len(pb_sizes) == 2  # genuinely heterogeneous
        assert spec.arrivals.kind == "time_varying"

    def test_checked_in_poisson_scenario_parses(self):
        path = REPO_ROOT / "examples" / "scenarios" / "poisson_pool.json"
        spec = ScenarioSpec.from_json(path.read_text())
        assert spec.arrivals.kind == "poisson"

    def test_checked_in_autoscale_scenario_parses(self):
        path = REPO_ROOT / "examples" / "scenarios" / "autoscale_pool.json"
        spec = ScenarioSpec.from_json(path.read_text())
        assert spec.autoscaler is not None
        assert spec.autoscaler.policy == "reactive"
        assert spec.autoscaler.group == "pool"
        assert spec.arrivals.kind == "time_varying"

    def test_checked_in_sharded_scenario_parses(self):
        path = REPO_ROOT / "examples" / "scenarios" / "sharded_pool.json"
        spec = ScenarioSpec.from_json(path.read_text())
        assert spec.fast_path and spec.shard
        assert spec.router == "round_robin"  # sharding's routing requirement
        assert spec.autoscaler is None
        assert spec.to_json() + "\n" == path.read_text()  # exact round-trip

    def test_checked_in_predictive_scenario_parses(self):
        path = REPO_ROOT / "examples" / "scenarios" / "predictive_pool.json"
        spec = ScenarioSpec.from_json(path.read_text())
        assert spec.autoscaler is not None
        assert spec.autoscaler.policy == "predictive"
        assert spec.replica_groups[0].startup_delay_ms > 0
        assert spec.arrivals.kind == "time_varying"

    def test_policy_switch_overrides_apply_atomically(self, capsys):
        # policy=scheduled and its schedule must land together; per-field
        # validation would reject either one alone.
        path = REPO_ROOT / "examples" / "scenarios" / "autoscale_pool.json"
        assert (
            main(
                [
                    "serve",
                    "--scenario",
                    str(path),
                    "--override",
                    "autoscaler.policy=scheduled",
                    "--override",
                    "autoscaler.schedule=[[0,1],[100,3]]",
                    "--override",
                    "autoscaler.period_ms=220",
                    "--dump-spec",
                ]
            )
            == 0
        )
        spec = ScenarioSpec.from_json(capsys.readouterr().out)
        assert spec.autoscaler.policy == "scheduled"
        assert spec.autoscaler.schedule == ((0, 1), (100, 3))

    def test_autoscaler_override_can_null_the_control_plane(
        self, scenario_file, capsys
    ):
        # The dotted-path override reaches the autoscaler too: nulling it
        # turns the scenario back into a fixed pool.
        path = REPO_ROOT / "examples" / "scenarios" / "autoscale_pool.json"
        assert (
            main(
                [
                    "serve",
                    "--scenario",
                    str(path),
                    "--override",
                    "autoscaler=null",
                    "--override",
                    "workload.num_queries=30",
                    "--dump-spec",
                ]
            )
            == 0
        )
        spec = ScenarioSpec.from_json(capsys.readouterr().out)
        assert spec.autoscaler is None
        assert spec.workload.num_queries == 30


class TestLint:
    def test_src_tree_is_clean(self, capsys):
        assert main(["lint", str(REPO_ROOT / "src")]) == 0
        assert "lint-clean" in capsys.readouterr().out

    def test_default_path_is_src(self, capsys, monkeypatch):
        monkeypatch.chdir(REPO_ROOT)
        assert main(["lint"]) == 0
        assert "lint-clean" in capsys.readouterr().out

    def test_violations_exit_nonzero_with_codes(self, capsys):
        fixture = REPO_ROOT / "tests" / "lint" / "fixtures" / "spec"
        assert main(["lint", str(fixture)]) == 1
        out = capsys.readouterr().out
        assert "RPR004" in out
        assert "bad_roundtrip.py" in out

    def test_json_format(self, capsys):
        fixture = REPO_ROOT / "tests" / "lint" / "fixtures" / "spec"
        assert main(["lint", "--format", "json", str(fixture)]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is False
        assert payload["counts_by_code"] == {"RPR004": 3}

    def test_select_filters_codes(self, capsys):
        fixture = REPO_ROOT / "tests" / "lint" / "fixtures" / "spec"
        assert main(["lint", "--select", "RPR001", str(fixture)]) == 0

    def test_unknown_code_fails_cleanly(self, capsys):
        assert main(["lint", "--select", "RPR777", "src"]) == 2
        assert "RPR777" in capsys.readouterr().err

    def test_missing_path_fails_cleanly(self, capsys):
        assert main(["lint", "/no/such/tree"]) == 2
        assert "lint:" in capsys.readouterr().err


class TestCheckedInReplayExamples:
    def test_checked_in_replayed_scenario_parses(self):
        path = REPO_ROOT / "examples" / "scenarios" / "replayed_pool.json"
        spec = ScenarioSpec.from_json(path.read_text())
        assert spec.arrivals.kind == "trace"
        assert spec.arrivals.path == "examples/traces/replay_sample.csv"
        assert spec.fast_path
        assert spec.to_json() + "\n" == path.read_text()  # exact round-trip

    def test_checked_in_replay_grid_parses(self):
        path = REPO_ROOT / "examples" / "sweeps" / "replay_grid.json"
        spec = SweepSpec.from_json(path.read_text())
        assert spec.num_cells == 12
        assert spec.base.arrivals.kind == "trace"
        assert spec.to_json() + "\n" == path.read_text()  # exact round-trip

    def test_serves_replayed_scenario_with_rate_scale_override(
        self, capsys, monkeypatch
    ):
        monkeypatch.chdir(REPO_ROOT)
        assert (
            main(
                [
                    "serve",
                    "--scenario",
                    "examples/scenarios/replayed_pool.json",
                    "--override",
                    "arrivals.rate_scale=2",
                ]
            )
            == 0
        )
        assert capsys.readouterr().out


@pytest.fixture()
def grid_file(tmp_path):
    base = ScenarioSpec(
        name="cli-grid-base",
        supernet_name="ofa_mobilenetv3",
        policy=Policy.STRICT_LATENCY,
        replica_groups=(ReplicaGroupSpec(count=1, name="pool"),),
        admission="drop_expired",
        workload=WorkloadSpec(
            num_queries=15, accuracy_range=None, latency_range_ms=None
        ),
        arrivals=ArrivalSpec(
            kind="trace", events=tuple(0.4 * (i + 1) for i in range(15))
        ),
        fast_path=True,
    )
    spec = SweepSpec(
        base=base,
        axes=(SweepAxis(path="arrivals.rate_scale", values=(1.0, 2.0)),),
        name="cli-grid",
    )
    path = tmp_path / "grid.json"
    path.write_text(spec.to_json())
    return path


class TestSweepCommand:
    def test_artifacts_byte_identical_across_worker_counts(
        self, grid_file, tmp_path, capsys
    ):
        artifacts = {}
        for workers in (1, 2):
            json_out = tmp_path / f"sweep-{workers}.json"
            csv_out = tmp_path / f"sweep-{workers}.csv"
            assert (
                main(
                    [
                        "sweep",
                        "--spec",
                        str(grid_file),
                        "--workers",
                        str(workers),
                        "--json",
                        str(json_out),
                        "--csv",
                        str(csv_out),
                    ]
                )
                == 0
            )
            artifacts[workers] = (json_out.read_bytes(), csv_out.read_bytes())
        assert artifacts[1] == artifacts[2]
        payload = json.loads(artifacts[1][0])
        assert len(payload["cells"]) == 2
        assert all(cell["error"] is None for cell in payload["cells"])

    def test_base_override_applies_to_every_cell(self, grid_file, capsys):
        assert (
            main(
                [
                    "sweep",
                    "--spec",
                    str(grid_file),
                    "--override",
                    "workload.num_queries=10",
                ]
            )
            == 0
        )
        assert "cell 0:" in capsys.readouterr().out

    def test_failing_cell_exits_one_without_poisoning_the_rest(
        self, tmp_path, capsys
    ):
        base = ScenarioSpec(
            name="cli-grid-base",
            supernet_name="ofa_mobilenetv3",
            policy=Policy.STRICT_LATENCY,
            replica_groups=(ReplicaGroupSpec(count=1, name="pool"),),
            workload=WorkloadSpec(
                num_queries=10, accuracy_range=None, latency_range_ms=None
            ),
            arrivals=ArrivalSpec(
                kind="trace", events=tuple(0.5 * (i + 1) for i in range(10))
            ),
            fast_path=True,
        )
        spec = SweepSpec(
            base=base,
            axes=(SweepAxis(path="replica_groups.0.count", values=(1, -1)),),
        )
        path = tmp_path / "poisoned.json"
        path.write_text(spec.to_json())
        assert main(["sweep", "--spec", str(path)]) == 1
        out = capsys.readouterr().out
        assert "ERROR" in out
        assert "cell 0:" in out

    def test_missing_spec_file_fails_cleanly(self, capsys):
        assert main(["sweep", "--spec", "/no/such/grid.json"]) == 2
        assert capsys.readouterr().err


class TestTraceFitCommand:
    def test_fit_writes_parseable_recipe(self, tmp_path, capsys):
        out = tmp_path / "recipe.json"
        log = REPO_ROOT / "examples" / "traces" / "replay_sample.csv"
        assert main(["trace", "fit", str(log), "--out", str(out)]) == 0
        report = capsys.readouterr().out
        assert "nominal rate" in report
        recipe = json.loads(out.read_text())
        arrivals = ArrivalSpec.from_dict(recipe["arrivals"])
        assert arrivals.kind == "time_varying"
        assert len(arrivals.segments) == len(recipe["fit"]["segments"])

    def test_fit_missing_log_fails_cleanly(self, capsys):
        assert main(["trace", "fit", "/no/such/log.csv"]) == 2
        assert capsys.readouterr().err


class TestModuleEntryPoint:
    def test_schema_prints_field_reference(self, capsys):
        assert main(["schema"]) == 0
        schema = json.loads(capsys.readouterr().out)
        assert set(schema) == {"defaults", "enums"}
        scenario = schema["defaults"]["scenario"]
        # The schema's defaults are exactly the serialized default spec.
        assert scenario == ScenarioSpec().to_dict()
        assert "predictive" in schema["enums"]["autoscaler.policy"]
        assert "tier_aware" in schema["enums"]["autoscaler.policy"]
        assert "cost_weight" in schema["defaults"]["replica_group"]
        assert "startup_delay_ms" in schema["defaults"]["replica_group"]

    def test_python_dash_m_repro(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "list"],
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
            env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
        )
        assert proc.returncode == 0
        assert "load_sweep" in proc.stdout
