"""Docs stay in sync with the code: schema reference, links, scenarios.

Four guarantees:

* ``docs/scenario-schema.md`` documents every field and every enum value
  that :func:`repro.serving.spec.scenario_schema` (the source of truth
  behind ``python -m repro schema``) exposes — adding a spec field without
  documenting it fails here.
* ``docs/experiments.md`` documents every registered experiment id.
* ``docs/invariants.md`` round-trips exactly against the invariant
  linter's registered checker codes (``repro.lint``) — a new checker
  must be documented, and phantom codes cannot linger in the docs.
* Relative links in the markdown tree resolve and every checked-in
  scenario JSON round-trips exactly (shared with CI via
  ``tools/check_docs.py``).
"""

from __future__ import annotations

import re
import subprocess
import sys
from pathlib import Path

import pytest

from repro.experiments.registry import EXPERIMENTS
from repro.serving.spec import ScenarioSpec, scenario_schema

REPO_ROOT = Path(__file__).resolve().parents[1]
DOCS = REPO_ROOT / "docs"


@pytest.fixture(scope="module")
def schema_doc() -> str:
    return (DOCS / "scenario-schema.md").read_text(encoding="utf-8")


def code_spans(text: str) -> set[str]:
    return set(re.findall(r"`([^`\n]+)`", text))


class TestSchemaDocSync:
    def test_every_spec_field_documented(self, schema_doc):
        spans = code_spans(schema_doc)
        schema = scenario_schema()
        missing = [
            f"{section}.{field}"
            for section, defaults in schema["defaults"].items()
            for field in defaults
            if field not in spans
        ]
        assert not missing, (
            "fields missing from docs/scenario-schema.md (document them "
            f"or python -m repro schema will disagree): {missing}"
        )

    def test_every_enum_value_documented(self, schema_doc):
        spans = code_spans(schema_doc)
        schema = scenario_schema()
        missing = [
            f"{field}={value}"
            for field, values in schema["enums"].items()
            for value in values
            if value not in spans
        ]
        assert not missing, (
            f"enum values missing from docs/scenario-schema.md: {missing}"
        )

    def test_no_phantom_autoscaler_fields_documented(self, schema_doc):
        """The autoscaler table documents only fields that really exist."""
        schema = scenario_schema()
        table = schema_doc.split("## Autoscaler")[1].split("###")[0]
        documented = {
            m.group(1)
            for m in re.finditer(r"^\| `(\w+)` \|", table, flags=re.M)
        }
        assert documented == set(schema["defaults"]["autoscaler"])


class TestExperimentsDocSync:
    def test_every_experiment_documented(self):
        text = (DOCS / "experiments.md").read_text(encoding="utf-8")
        spans = code_spans(text)
        missing = sorted(set(EXPERIMENTS) - spans)
        assert not missing, f"experiments missing from docs/experiments.md: {missing}"


class TestInvariantsDocSync:
    def test_codes_round_trip_against_registry(self):
        from repro.lint import checker_codes

        text = (DOCS / "invariants.md").read_text(encoding="utf-8")
        documented = set(re.findall(r"RPR\d{3}", text))
        registered = set(checker_codes())
        assert documented == registered, (
            f"docs/invariants.md vs repro.lint registry drift — "
            f"undocumented: {sorted(registered - documented)}, "
            f"phantom: {sorted(documented - registered)}"
        )

    def test_every_code_has_a_runtime_backstop_column(self):
        from repro.lint import checker_codes

        text = (DOCS / "invariants.md").read_text(encoding="utf-8")
        for code in checker_codes():
            row = next(
                (
                    line
                    for line in text.splitlines()
                    if line.startswith(f"| `{code}`")
                ),
                None,
            )
            assert row is not None, f"no table row for {code} in invariants.md"
            backstop = row.rstrip("|").rsplit("|", 1)[-1]
            assert "tests/" in backstop, (
                f"{code}'s table row names no runtime backstop test"
            )


class TestCheckDocsTool:
    def test_check_docs_passes(self):
        result = subprocess.run(
            [sys.executable, str(REPO_ROOT / "tools" / "check_docs.py")],
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
        )
        assert result.returncode == 0, result.stdout + result.stderr
        assert "docs OK" in result.stdout

    def test_checked_in_scenarios_roundtrip(self):
        files = sorted((REPO_ROOT / "examples" / "scenarios").glob("*.json"))
        assert files
        for path in files:
            spec = ScenarioSpec.from_json(path.read_text(encoding="utf-8"))
            assert ScenarioSpec.from_dict(spec.to_dict()) == spec
