"""Direct unit tests for ``tools/validate_trace.py``.

CI's ``cli-smoke`` job runs the validator against freshly served traces —
which only proves it accepts *valid* output.  These tests feed it
hand-built payloads to prove each structural and fault-coherence rule
actually fires on the malformed shape it guards against.
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

TOOL = Path(__file__).resolve().parents[2] / "tools" / "validate_trace.py"

spec = importlib.util.spec_from_file_location("validate_trace", TOOL)
validate_trace_mod = importlib.util.module_from_spec(spec)
assert spec.loader is not None
spec.loader.exec_module(validate_trace_mod)
validate_trace = validate_trace_mod.validate_trace


def meta(name="thread_name"):
    return {"ph": "M", "pid": 1, "name": name, "args": {"name": "replica-0"}}


def span(cat="query", id_="q0", start=1.0, end=2.0):
    return [
        {"ph": "b", "pid": 1, "cat": cat, "id": id_, "ts": start},
        {"ph": "e", "pid": 1, "cat": cat, "id": id_, "ts": end},
    ]


def fault(kind, replica, ts=1.0):
    return {
        "ph": "i",
        "pid": 1,
        "cat": "fault",
        "name": kind,
        "ts": ts,
        "s": "g",
        "args": {"replica_index": replica},
    }


def payload(*extra_events):
    return {"traceEvents": [meta(), *span(), *extra_events]}


class TestStructuralRules:
    def test_minimal_valid_trace_passes(self):
        assert validate_trace(payload()) == []

    def test_non_object_payload_rejected(self):
        assert validate_trace([1, 2]) == ["payload is not a JSON object"]

    def test_empty_trace_events_rejected(self):
        assert validate_trace({"traceEvents": []})

    def test_unknown_phase_flagged(self):
        problems = validate_trace(payload({"ph": "Z", "pid": 1}))
        assert any("unknown or missing ph" in p for p in problems)

    def test_missing_pid_flagged(self):
        problems = validate_trace(
            {"traceEvents": [meta(), *span(), {"ph": "i", "ts": 1.0, "s": "g"}]}
        )
        assert any("missing pid" in p for p in problems)

    def test_negative_timestamp_flagged(self):
        problems = validate_trace(payload(*span(id_="q1", start=-1.0)))
        assert any("finite non-negative" in p for p in problems)

    def test_no_thread_name_flagged(self):
        problems = validate_trace({"traceEvents": span()})
        assert any("thread_name" in p for p in problems)

    def test_unbalanced_span_flagged(self):
        events = [meta(), {"ph": "b", "pid": 1, "cat": "query", "id": "q0", "ts": 1.0}]
        problems = validate_trace({"traceEvents": events})
        assert any("expected exactly one of each" in p for p in problems)

    def test_span_closing_before_opening_flagged(self):
        problems = validate_trace(
            {"traceEvents": [meta(), *span(id_="q1", start=5.0, end=2.0)]}
        )
        assert any("closes before it opens" in p for p in problems)


class TestFaultCoherenceRules:
    def test_coherent_fault_sequence_passes(self):
        events = payload(
            fault("straggle", 0, ts=1.0),
            fault("straggle_end", 0, ts=2.0),
            fault("dispatch_failure", 1, ts=3.0),
            fault("crash", 1, ts=4.0),
        )
        assert validate_trace(events) == []

    @pytest.mark.parametrize("replica", [None, -1, 1.5, True, "0"])
    def test_bad_replica_index_flagged(self, replica):
        problems = validate_trace(payload(fault("crash", replica)))
        assert any("replica_index" in p for p in problems)

    def test_unknown_fault_kind_flagged(self):
        problems = validate_trace(payload(fault("meltdown", 0)))
        assert any("unknown fault kind 'meltdown'" in p for p in problems)

    def test_crash_at_most_once_per_replica(self):
        problems = validate_trace(
            payload(fault("crash", 0, ts=1.0), fault("crash", 0, ts=2.0))
        )
        assert any("after its crash" in p for p in problems)

    def test_no_fault_events_after_crash(self):
        problems = validate_trace(
            payload(fault("crash", 0, ts=1.0), fault("straggle", 0, ts=2.0))
        )
        assert any("'straggle' on replica 0 after its crash" in p for p in problems)

    def test_straggle_end_needs_open_interval(self):
        problems = validate_trace(payload(fault("straggle_end", 2)))
        assert any("without an open straggle interval" in p for p in problems)

    def test_crash_on_other_replica_unaffected(self):
        events = payload(fault("crash", 0, ts=1.0), fault("crash", 1, ts=2.0))
        assert validate_trace(events) == []


class TestMainEntryPoint:
    def test_exit_codes(self, tmp_path, capsys):
        good = tmp_path / "good.json"
        good.write_text(
            json.dumps(payload()), encoding="utf-8"
        )
        bad = tmp_path / "bad.json"
        bad.write_text("{not json", encoding="utf-8")
        assert validate_trace_mod.main(["validate_trace.py", str(good)]) == 0
        assert "trace OK" in capsys.readouterr().out
        assert validate_trace_mod.main(["validate_trace.py", str(bad)]) == 2
        assert validate_trace_mod.main(["validate_trace.py"]) == 2

    def test_invalid_trace_exits_one(self, tmp_path, capsys):
        path = tmp_path / "invalid.json"
        path.write_text(
            json.dumps(payload(fault("meltdown", 0))),
            encoding="utf-8",
        )
        assert validate_trace_mod.main(["validate_trace.py", str(path)]) == 1
        assert "INVALID" in capsys.readouterr().out
