#!/usr/bin/env python
"""Docs health check: links, scenario round-trips, lint-code sync.

Three checks, run by the CI ``docs`` job and the tier-1 docs tests:

1. **Link check** — every relative markdown link in ``README.md``,
   ``ROADMAP.md`` and ``docs/*.md`` must point at a file that exists
   (anchors are stripped; external ``http(s)`` links are skipped — the
   target environment is offline).
2. **Scenario round-trips** — every ``examples/scenarios/*.json`` must
   parse into a valid :class:`ScenarioSpec` and survive
   ``from_dict(to_dict(spec)) == spec`` exactly.
3. **Invariant-code sync** — the ``RPR###`` codes referenced in
   ``docs/invariants.md`` must round-trip exactly against the checkers
   registered in :mod:`repro.lint`: every registered code documented,
   no phantom codes documented.

Usage::

    PYTHONPATH=src python tools/check_docs.py

Exits non-zero with a per-finding report when anything is broken.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]

#: Markdown files whose relative links must resolve.
DOC_FILES = ("README.md", "ROADMAP.md")
DOC_GLOBS = ("docs/*.md",)

_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def iter_doc_files() -> list[Path]:
    files = [REPO_ROOT / name for name in DOC_FILES]
    for pattern in DOC_GLOBS:
        files.extend(sorted(REPO_ROOT.glob(pattern)))
    return [f for f in files if f.exists()]


def check_links() -> list[str]:
    errors = []
    for doc in iter_doc_files():
        text = doc.read_text(encoding="utf-8")
        for match in _LINK.finditer(text):
            target = match.group(1)
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            path = target.split("#", 1)[0]
            if not path:  # pure in-page anchor
                continue
            resolved = (doc.parent / path).resolve()
            if not resolved.exists():
                errors.append(
                    f"{doc.relative_to(REPO_ROOT)}: broken link -> {target}"
                )
    return errors


def check_scenarios() -> list[str]:
    sys.path.insert(0, str(REPO_ROOT / "src"))
    from repro.serving.spec import ScenarioSpec

    errors = []
    scenario_files = sorted((REPO_ROOT / "examples" / "scenarios").glob("*.json"))
    if not scenario_files:
        errors.append("no scenario files found under examples/scenarios/")
    for path in scenario_files:
        rel = path.relative_to(REPO_ROOT)
        try:
            spec = ScenarioSpec.from_json(path.read_text(encoding="utf-8"))
        except Exception as exc:  # noqa: BLE001 - report, don't crash
            errors.append(f"{rel}: does not parse ({exc})")
            continue
        back = ScenarioSpec.from_dict(spec.to_dict())
        if back != spec:
            errors.append(f"{rel}: to_dict/from_dict round-trip is not exact")
    return errors


def check_invariant_codes() -> list[str]:
    sys.path.insert(0, str(REPO_ROOT / "src"))
    from repro.lint import checker_codes

    doc = REPO_ROOT / "docs" / "invariants.md"
    if not doc.exists():
        return ["docs/invariants.md is missing"]
    documented = set(re.findall(r"RPR\d{3}", doc.read_text(encoding="utf-8")))
    registered = set(checker_codes())
    errors = []
    for code in sorted(registered - documented):
        errors.append(
            f"docs/invariants.md: registered lint code {code} is undocumented"
        )
    for code in sorted(documented - registered):
        errors.append(
            f"docs/invariants.md: references {code}, which is not a "
            "registered checker"
        )
    return errors


def main() -> int:
    errors = check_links() + check_scenarios() + check_invariant_codes()
    docs = len(iter_doc_files())
    if errors:
        for error in errors:
            print(f"FAIL {error}")
        print(f"{len(errors)} problem(s) across {docs} docs")
        return 1
    print(
        f"docs OK: {docs} markdown files link-checked, scenarios "
        "round-trip, lint codes in sync"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
