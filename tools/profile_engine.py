#!/usr/bin/env python
"""Profile (or just time) the serving engine's event loop.

Runs a synthetic constant-work scenario — a pool of replicas fed a seeded
uniform workload on a Poisson arrival process, served by a near-free backend
— through one of the engine's execution strategies, so the measured time is
the event loop itself rather than any model backend:

* ``reference`` — the Event/EventHeap loop (the pre-fast-path semantics),
* ``fast``      — the cursor + raw-tuple-heap loop (``fast_path=True``),
* ``shard``     — per-replica independent simulation (``shard=True``).

Usage::

    PYTHONPATH=src python tools/profile_engine.py --num-queries 1000000
    PYTHONPATH=src python tools/profile_engine.py --mode fast --hotspots 15
    PYTHONPATH=src python tools/profile_engine.py --mode reference \
        --stats /tmp/ref.pstats

Without ``--hotspots``/``--stats`` the run is timed only (no profiler
overhead) and prints queries/sec; with either, the run happens under
cProfile.  GC is disabled around the timed region (matching the benchmark
suite) so allocator pauses do not drown the loop's constant factor.
"""

from __future__ import annotations

import argparse
import cProfile
import gc
import pstats
import sys
import time

import numpy as np

from repro.core.metrics import QueryRecord
from repro.serving.engine import AcceleratorReplica, ServingEngine
from repro.serving.engine.core import poisson_arrivals
from repro.serving.workload import WorkloadGenerator, WorkloadSpec


class ConstantWorkServer:
    """Near-free backend: constant service time, one shared record.

    The engine never reads the record's ``query_index`` (outcomes carry the
    query's own index), so sharing one record across queries is safe and
    keeps ``serve_query`` down to an attribute read — the profile then shows
    the event loop, not record construction.
    """

    __slots__ = ("record",)

    def __init__(self, service_ms: float) -> None:
        self.record = QueryRecord(
            query_index=-1,
            accuracy_constraint=0.5,
            latency_constraint_ms=1e9,
            subnet_name="profile-stub",
            served_accuracy=0.9,
            served_latency_ms=service_ms,
        )

    def serve_query(self, query, *, effective_latency_constraint_ms=None):
        return self.record


def build_workload(num_queries: int, seed: int):
    gen = WorkloadGenerator(
        WorkloadSpec(num_queries=num_queries, pattern="uniform"), seed=seed
    )
    return gen


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--num-queries", type=int, default=1_000_000)
    parser.add_argument("--replicas", type=int, default=4)
    parser.add_argument(
        "--rate", type=float, default=0.8, help="Poisson arrival rate (queries/ms)"
    )
    parser.add_argument(
        "--service-ms", type=float, default=1.2, help="constant service time"
    )
    parser.add_argument(
        "--mode", choices=("reference", "fast", "shard"), default="fast"
    )
    parser.add_argument(
        "--admission", default="drop_expired", help="admission policy name"
    )
    parser.add_argument("--seed", type=int, default=3)
    parser.add_argument(
        "--hotspots",
        type=int,
        metavar="N",
        help="profile the run and print the top N functions by cumulative time",
    )
    parser.add_argument(
        "--stats",
        metavar="FILE",
        help="profile the run and dump pstats data to FILE",
    )
    args = parser.parse_args(argv)

    gen = build_workload(args.num_queries, args.seed)
    if args.mode == "reference":
        trace = gen.generate()
    else:
        trace = gen.generate_array_trace()
    arrivals = poisson_arrivals(
        args.num_queries, args.rate, rng=np.random.default_rng(args.seed + 1)
    )
    engine = ServingEngine(
        [
            AcceleratorReplica(ConstantWorkServer(args.service_ms))
            for _ in range(args.replicas)
        ],
        admission=args.admission,
    )
    run_kwargs = dict(fast_path=args.mode == "fast", shard=args.mode == "shard")

    profiler = cProfile.Profile() if (args.hotspots or args.stats) else None
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        if profiler is not None:
            profiler.enable()
        start = time.perf_counter()
        result = engine.run(trace, arrivals, **run_kwargs)
        elapsed = time.perf_counter() - start
        if profiler is not None:
            profiler.disable()
    finally:
        if gc_was_enabled:
            gc.enable()

    qps = args.num_queries / elapsed if elapsed > 0 else float("inf")
    print(
        f"{args.mode}: {args.num_queries:,} queries, {args.replicas} replicas, "
        f"rate {args.rate}/ms -> {elapsed:.2f}s  ({qps:,.0f} queries/sec; "
        f"served {result.num_served:,}, dropped {result.num_dropped:,})"
    )
    if profiler is not None:
        if args.stats:
            profiler.dump_stats(args.stats)
            print(f"pstats data written to {args.stats}")
        if args.hotspots:
            pstats.Stats(profiler, stream=sys.stdout).sort_stats(
                "cumulative"
            ).print_stats(args.hotspots)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
