#!/usr/bin/env python
"""Validate a Chrome trace-event JSON file exported by ``--trace``.

Structural checks against the trace-event format (the subset the flight
recorder emits; see ``docs/observability.md``):

1. The payload is an object with a non-empty ``traceEvents`` array.
2. Every event has ``ph``/``pid`` and the per-phase required keys:
   ``M`` metadata carry ``name`` + ``args.name``; ``b``/``e`` async
   spans carry ``cat``/``id``/``ts``; ``X`` complete events carry
   ``ts``/``dur``; ``i`` instants carry ``ts`` and a scope ``s``.
3. At least one ``thread_name`` metadata event (a replica track).
4. Timestamps and durations are finite and non-negative.
5. Async spans balance: every ``(cat, id)`` opens with ``b`` exactly
   once, closes with ``e`` exactly once, and ends no earlier than it
   starts.
6. Fault instants (``cat: fault``, emitted by fault-injected runs) are
   coherent: each carries a non-negative integer ``args.replica_index``
   and a known kind (``crash`` / ``straggle`` / ``straggle_end`` /
   ``dispatch_failure``), a replica crashes at most once and reports no
   fault events after its crash, and every ``straggle_end`` closes an
   open straggle interval.

Usage::

    python tools/validate_trace.py trace.json

Exits 0 when the trace is well-formed, 1 with a per-finding report
otherwise (2 on unreadable/unparsable input).  Stdlib only — CI runs it
in the ``cli-smoke`` job against a freshly served scenario.
"""

from __future__ import annotations

import json
import math
import sys

_REQUIRED_BY_PHASE = {
    "M": ("name",),
    "b": ("cat", "id", "ts"),
    "e": ("cat", "id", "ts"),
    "X": ("ts", "dur"),
    "i": ("ts", "s"),
}


def _finite_nonneg(value: object) -> bool:
    return isinstance(value, (int, float)) and math.isfinite(value) and value >= 0


def validate_trace(payload: object) -> list[str]:
    """All structural problems with ``payload``; empty means well-formed."""
    if not isinstance(payload, dict):
        return ["payload is not a JSON object"]
    events = payload.get("traceEvents")
    if not isinstance(events, list) or not events:
        return ["traceEvents is missing, not an array, or empty"]

    problems: list[str] = []
    thread_names = 0
    opens: dict[tuple[str, object], list[float]] = {}
    closes: dict[tuple[str, object], list[float]] = {}
    faults: list[tuple[int, dict]] = []
    crashed: set[int] = set()
    straggling: set[int] = set()
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            problems.append(f"event {i}: not an object")
            continue
        phase = event.get("ph")
        if phase not in _REQUIRED_BY_PHASE:
            problems.append(f"event {i}: unknown or missing ph {phase!r}")
            continue
        if "pid" not in event:
            problems.append(f"event {i}: missing pid")
        for key in _REQUIRED_BY_PHASE[phase]:
            if key not in event:
                problems.append(f"event {i} (ph={phase}): missing {key}")
        if phase == "M":
            if event.get("name") == "thread_name":
                thread_names += 1
            if not isinstance(event.get("args", {}).get("name"), str):
                problems.append(f"event {i}: metadata without args.name")
            continue
        for key in ("ts", "dur"):
            if key in event and not _finite_nonneg(event[key]):
                problems.append(
                    f"event {i} (ph={phase}): {key}={event[key]!r} is not a "
                    "finite non-negative number"
                )
        if phase in ("b", "e") and "ts" in event:
            span = (str(event.get("cat")), event.get("id"))
            (opens if phase == "b" else closes).setdefault(span, []).append(
                float(event["ts"])
            )
        if phase == "i" and event.get("cat") == "fault":
            faults.append((i, event))

    for i, event in faults:
        replica = event.get("args", {}).get("replica_index")
        if not isinstance(replica, int) or isinstance(replica, bool) or replica < 0:
            problems.append(
                f"event {i}: fault instant without a non-negative integer "
                f"args.replica_index (got {replica!r})"
            )
            continue
        kind = str(event.get("name", "")).split(" ")[0]
        if kind not in ("crash", "straggle", "straggle_end", "dispatch_failure"):
            problems.append(f"event {i}: unknown fault kind {kind!r}")
            continue
        if replica in crashed:
            problems.append(
                f"event {i}: fault {kind!r} on replica {replica} after its crash"
            )
        if kind == "crash":
            crashed.add(replica)
        elif kind == "straggle":
            straggling.add(replica)
        elif kind == "straggle_end":
            if replica not in straggling:
                problems.append(
                    f"event {i}: straggle_end on replica {replica} without an "
                    "open straggle interval"
                )
            straggling.discard(replica)

    if thread_names == 0:
        problems.append("no thread_name metadata events (no replica tracks)")
    for span in sorted(set(opens) | set(closes), key=repr):
        n_open = len(opens.get(span, ()))
        n_close = len(closes.get(span, ()))
        if n_open != 1 or n_close != 1:
            problems.append(
                f"span {span!r}: {n_open} open(s), {n_close} close(s); "
                "expected exactly one of each"
            )
        elif closes[span][0] < opens[span][0]:
            problems.append(f"span {span!r}: closes before it opens")
    return problems


def main(argv: list[str]) -> int:
    if len(argv) != 2:
        print("usage: validate_trace.py TRACE_JSON", file=sys.stderr)
        return 2
    try:
        with open(argv[1], "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, ValueError) as exc:
        print(f"cannot read trace: {exc}", file=sys.stderr)
        return 2
    problems = validate_trace(payload)
    if problems:
        for problem in problems:
            print(f"INVALID: {problem}")
        return 1
    events = payload["traceEvents"]
    spans = sum(1 for e in events if e.get("ph") == "b")
    faults = sum(
        1 for e in events if e.get("ph") == "i" and e.get("cat") == "fault"
    )
    print(
        f"trace OK: {len(events)} events, {spans} query spans, "
        f"{faults} fault instants"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
